//! The top-level prover entry points.
//!
//! The free functions here ([`prove`], [`prove_with_configs`],
//! [`crate::sweep`]) are retained for compatibility as thin wrappers that
//! open a one-shot [`crate::ProverSession`]; new code should use a session
//! directly so that derived artifacts are shared across configurations.

use crate::certificate::{validate_certificate, NonTerminationCertificate};
use crate::check1::check1_cached;
use crate::check2::check2_cached;
use crate::config::{Budget, CheckKind, ProverConfig};
use crate::error::Error;
use crate::session::{Caches, ProveStats, ProverSession};
use revterm_lang::Program;
use revterm_ts::{lower, TransitionSystem};
use std::time::{Duration, Instant};

/// The verdict of a prover run.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// Non-termination was proved; the (validated) certificate is attached.
    NonTerminating(Box<NonTerminationCertificate>),
    /// The prover could not prove non-termination with this configuration
    /// (the program may still be non-terminating — the algorithm is sound,
    /// not complete).
    Unknown,
    /// The configuration's cooperative [`Budget`] expired before the search
    /// finished.  Unlike [`Verdict::Unknown`] this does *not* mean the
    /// configuration was exhausted — re-running with a larger budget may
    /// still prove non-termination.  The interruption happens only at
    /// candidate boundaries, so the session that produced this verdict is
    /// never left with partially computed cache entries.
    Timeout,
}

/// Sentinel returned by the cached checks when the budget guard fires.
pub(crate) struct TimedOut;

/// An armed [`Budget`]: the wall-clock deadline (fixed when the `prove` call
/// starts) and the absolute entailment-lookup count at which to stop.
pub(crate) struct BudgetGuard {
    deadline: Option<Instant>,
    entail_stop: Option<u64>,
}

impl BudgetGuard {
    /// Arms a budget at call start.  `entail_lookups_now` is the session's
    /// current entailment-lookup counter, so the work cap counts only this
    /// call's queries.
    pub(crate) fn arm(budget: &Budget, entail_lookups_now: u64) -> BudgetGuard {
        BudgetGuard {
            deadline: budget.time_limit.map(|limit| Instant::now() + limit),
            entail_stop: budget.max_entailment_calls.map(|cap| entail_lookups_now + cap),
        }
    }

    /// The same limits as an invgen [`SynthesisBudget`], so one Houdini run
    /// can stop mid-fixpoint instead of only between candidates.  A
    /// cut-short synthesis is never memoized (the checks return `TimedOut`
    /// without caching), keeping the sessioned-equals-fresh contract.
    pub(crate) fn synthesis_budget(&self) -> revterm_invgen::SynthesisBudget {
        revterm_invgen::SynthesisBudget {
            deadline: self.deadline,
            entail_call_stop: self.entail_stop,
        }
    }

    /// Returns `true` iff a limit has expired.  Called between candidates
    /// and before synthesis; the synthesis loops themselves poll via
    /// [`BudgetGuard::synthesis_budget`].
    pub(crate) fn exhausted(&self, entail_lookups_now: u64) -> bool {
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return true;
            }
        }
        if let Some(stop) = self.entail_stop {
            if entail_lookups_now >= stop {
                return true;
            }
        }
        false
    }
}

/// The result of a prover run: the verdict plus timing and per-stage
/// statistics.
#[derive(Debug, Clone)]
pub struct ProofResult {
    /// The verdict.
    pub verdict: Verdict,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// The configuration label that produced the verdict.
    pub config_label: String,
    /// Structured per-stage statistics: candidates tried, synthesis and
    /// entailment calls, cache hits (all zero deltas on a cold one-shot run
    /// except the computation counters).
    pub stats: ProveStats,
}

impl ProofResult {
    /// Returns `true` iff non-termination was proved.
    pub fn is_non_terminating(&self) -> bool {
        matches!(self.verdict, Verdict::NonTerminating(_))
    }

    /// Returns `true` iff the run was cut short by its [`Budget`].
    pub fn timed_out(&self) -> bool {
        matches!(self.verdict, Verdict::Timeout)
    }

    /// The certificate, if non-termination was proved.
    pub fn certificate(&self) -> Option<&NonTerminationCertificate> {
        match &self.verdict {
            Verdict::NonTerminating(c) => Some(c),
            Verdict::Unknown | Verdict::Timeout => None,
        }
    }
}

/// Runs one configuration against the session caches, re-validating any
/// candidate certificate with the independent (uncached) oracle before
/// reporting non-termination.
pub(crate) fn prove_cached(
    ts: &TransitionSystem,
    config: &ProverConfig,
    caches: &mut Caches,
) -> ProofResult {
    let start = Instant::now();
    let mut stats = ProveStats::default();
    let (lookups_before, hits_before) = (caches.entail.lookups, caches.entail.hits);
    let lp_before = caches.lp_basis.stats;
    let guard = BudgetGuard::arm(&config.budget, lookups_before);
    let candidate = match config.check {
        CheckKind::Check1 => check1_cached(ts, config, caches, &mut stats, &guard),
        CheckKind::Check2 => check2_cached(ts, config, caches, &mut stats, &guard),
    };
    let verdict = match candidate {
        Ok(Some(cert)) => match validate_certificate(ts, &cert, &config.entailment) {
            Ok(()) => Verdict::NonTerminating(Box::new(cert)),
            Err(_) => Verdict::Unknown,
        },
        Ok(None) => Verdict::Unknown,
        Err(TimedOut) => Verdict::Timeout,
    };
    stats.entailment_calls = caches.entail.lookups - lookups_before;
    stats.entailment_cache_hits = caches.entail.hits - hits_before;
    stats.lp = caches.lp_basis.stats.delta_since(&lp_before);
    ProofResult { verdict, elapsed: start.elapsed(), config_label: config.label(), stats }
}

/// Proves non-termination of a transition system with a single configuration.
///
/// A `NonTerminating` verdict is only returned after the certificate produced
/// by the check has been independently re-validated; if validation fails
/// (which would indicate a bug in the synthesis heuristics) the verdict is
/// downgraded to `Unknown`.
///
/// Deprecated-style wrapper: this is exactly one cold
/// [`ProverSession::prove`] call.  Prefer opening a session when proving the
/// same system more than once.
pub fn prove(ts: &TransitionSystem, config: &ProverConfig) -> ProofResult {
    prove_cached(ts, config, &mut Caches::default())
}

/// Proves non-termination of a transition system, trying several
/// configurations in order and returning the first success (or `Unknown`
/// with the cumulative time).
///
/// Deprecated-style wrapper over [`ProverSession::prove_first`] on a
/// one-shot session; prefer the session API.  On an empty `configs` slice
/// the result is `Unknown` with the documented
/// [`crate::NO_CONFIGS_LABEL`] label.
pub fn prove_with_configs(ts: &TransitionSystem, configs: &[ProverConfig]) -> ProofResult {
    ProverSession::new(ts.clone()).prove_first(configs)
}

/// Convenience entry point: lowers a program and proves it with the default
/// Check 1 / Check 2 pair of configurations.
///
/// # Errors
///
/// Returns [`Error::Analysis`] if the program cannot be translated.
pub fn prove_program(program: &Program, config: &ProverConfig) -> Result<ProofResult, Error> {
    let ts = lower(program).map_err(|e| Error::Analysis(e.to_string()))?;
    Ok(prove(&ts, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CheckKind, Strategy};
    use revterm_lang::parse_program;

    const RUNNING: &str =
        "while x >= 9 do x := ndet(); y := 10 * x; while x <= y do x := x + 1; od od";

    /// Fig. 3 / Appendix C: every non-terminating execution is aperiodic.
    const APERIODIC: &str = "while x >= 1 do y := 10 * x; while x <= y do x := x + 1; od od";

    /// A scaled-down version of Fig. 2 (bound 3 instead of 99): no initial
    /// configuration is diverging w.r.t. any constant resolution, but the
    /// program is non-terminating.
    const FIG2_SMALL: &str = "n := 0; b := 0; u := 0; \
        while b == 0 and n <= 3 do \
          u := ndet(); \
          if u <= -1 then b := -1; elseif u == 0 then b := 0; else b := 1; fi \
          n := n + 1; \
          if n >= 4 and b >= 1 then while true do skip; od fi \
        od";

    #[test]
    fn check1_proves_running_example() {
        let ts = revterm_ts::lower(&parse_program(RUNNING).unwrap()).unwrap();
        let result = prove(&ts, &ProverConfig::default());
        assert!(result.is_non_terminating());
        let cert = result.certificate().unwrap();
        assert_eq!(cert.check_kind(), CheckKind::Check1);
        // The certificate summary mentions the resolved assignment.
        assert!(cert.summary(&ts).contains("x :="));
    }

    #[test]
    fn check1_proves_aperiodic_example() {
        let ts = revterm_ts::lower(&parse_program(APERIODIC).unwrap()).unwrap();
        let result = prove(&ts, &ProverConfig::default());
        assert!(result.is_non_terminating(), "Fig. 3 should be proved by Check 1");
    }

    #[test]
    fn terminating_programs_stay_unknown() {
        let ts =
            revterm_ts::lower(&parse_program("n := 0; while n <= 5 do n := n + 1; od").unwrap())
                .unwrap();
        for check in [CheckKind::Check1, CheckKind::Check2] {
            let result = prove(&ts, &ProverConfig::with_check(check));
            assert!(!result.is_non_terminating(), "{check} must not claim non-termination");
        }
    }

    #[test]
    fn check2_proves_program_without_initial_diverging_configuration() {
        let ts = revterm_ts::lower(&parse_program(FIG2_SMALL).unwrap()).unwrap();
        // Check 1 fails with constant/linear resolutions (Example 5.5's point).
        let c1 = prove(&ts, &ProverConfig::default());
        assert!(!c1.is_non_terminating(), "Check 1 should not prove the Fig. 2 family");
        // Check 2 succeeds.
        let mut config = ProverConfig::with_check(CheckKind::Check2);
        config.params = revterm_invgen::TemplateParams::new(3, 1, 1);
        let c2 = prove(&ts, &config);
        assert!(c2.is_non_terminating(), "Check 2 should prove the Fig. 2 family");
        assert_eq!(c2.certificate().unwrap().check_kind(), CheckKind::Check2);
    }

    #[test]
    fn guard_propagation_strategy_also_proves_easy_cases() {
        let ts =
            revterm_ts::lower(&parse_program("while x >= 0 do x := x + 1; od").unwrap()).unwrap();
        let config = ProverConfig::builder().strategy(Strategy::GuardPropagation).build();
        assert!(prove(&ts, &config).is_non_terminating());
    }

    #[test]
    fn prove_program_entry_point() {
        let program = parse_program("while true do skip; od").unwrap();
        let result = prove_program(&program, &ProverConfig::default()).unwrap();
        assert!(result.is_non_terminating());
        assert!(result.elapsed.as_secs() < 120);
        assert!(result.config_label.starts_with("check1"));
    }

    #[test]
    fn prove_with_configs_on_empty_slice_reports_the_documented_label() {
        // Regression: the empty sweep used to return `Unknown` silently with
        // the same label as "ran and failed"; it now carries the documented
        // sentinel label so callers can distinguish the two.
        let ts = revterm_ts::lower(&parse_program("while true do skip; od").unwrap()).unwrap();
        let result = prove_with_configs(&ts, &[]);
        assert!(!result.is_non_terminating());
        assert_eq!(result.config_label, crate::session::NO_CONFIGS_LABEL);
        assert_eq!(result.stats, crate::session::ProveStats::default());
    }

    #[test]
    fn prove_with_configs_tries_until_success() {
        let ts = revterm_ts::lower(&parse_program(FIG2_SMALL).unwrap()).unwrap();
        let configs = vec![
            ProverConfig::default(),
            ProverConfig::builder()
                .check(CheckKind::Check2)
                .params(revterm_invgen::TemplateParams::new(3, 1, 1))
                .build(),
        ];
        let result = prove_with_configs(&ts, &configs);
        assert!(result.is_non_terminating());
        assert!(result.config_label.starts_with("check2"));
    }
}
