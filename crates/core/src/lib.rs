//! RevTerm: proving non-termination by program reversal.
//!
//! This crate implements the paper's contribution — Algorithm 1 and the
//! BI-certificate machinery of Sections 4 and 5 — on top of the substrates
//! built in the sibling crates:
//!
//! * [`revterm_lang`] — the input language,
//! * [`revterm_ts`] — transition systems, reversal, resolutions of
//!   non-determinism,
//! * [`revterm_absint`] — the interval/sign abstract-interpretation
//!   pre-analysis (sound pruning and the `revterm analyze` facts),
//! * [`revterm_invgen`] — template-based inductive invariant generation,
//! * [`revterm_solver`] — the exact Farkas/Handelman entailment oracle,
//! * [`revterm_safety`] — the bounded safety (reachability) prover.
//!
//! # Quick start: sessions
//!
//! The primary entry point is a [`ProverSession`]: it owns one transition
//! system together with memoized derived artifacts (restricted and reversed
//! systems, candidate atom pools, interpreter probe traces, entailment memo
//! tables), so running many configurations — the paper's Section 6 protocol
//! sweeps the whole check × strategy × template grid per benchmark — pays
//! for shared work once.  Configurations are assembled with
//! [`ProverConfig::builder`].
//!
//! ```
//! use revterm::{CheckKind, ProverConfig, ProverSession};
//! use revterm_lang::parse_program;
//!
//! // The paper's running example (Fig. 1).
//! let program = parse_program(
//!     "while x >= 9 do x := ndet(); y := 10 * x; while x <= y do x := x + 1; od od",
//! ).unwrap();
//! let mut session = ProverSession::from_program(&program).unwrap();
//!
//! // A single configuration...
//! let result = session.prove(&ProverConfig::default());
//! assert!(result.is_non_terminating());
//!
//! // ...and a second one on the warm session: identical verdicts to a fresh
//! // run, but shared artifacts (probes, pools, entailment queries) are
//! // served from the session caches, as the statistics show.
//! let config = ProverConfig::builder().check(CheckKind::Check1).template(3, 1, 1).build();
//! let warm = session.prove(&config);
//! assert!(warm.is_non_terminating());
//! assert!(warm.stats.total_cache_hits() > 0);
//! ```
//!
//! Sweeps run through the same session ([`ProverSession::sweep`]), and
//! [`ProofResult`] / [`ConfigOutcome`] carry structured per-stage statistics
//! ([`ProveStats`]): candidates tried, synthesis and entailment calls, cache
//! hits.
//!
//! # Migration from the free-function entry points
//!
//! The pre-session API survives as thin wrappers that open a one-shot
//! session, with identical verdicts:
//!
//! * `prove(&ts, &config)` → [`ProverSession::new`]`(ts).prove(&config)`;
//! * `prove_with_configs(&ts, &configs)` →
//!   [`ProverSession::prove_first`] (an **empty** config slice now reports
//!   the documented [`NO_CONFIGS_LABEL`] instead of the ambiguous `"none"`);
//! * `sweep(&ts, &configs, stop)` → [`ProverSession::sweep`];
//! * `ProverConfig { check, .. }` struct literals → [`ProverConfig::builder`].
//!
//! The wrappers are kept for downstream code and scripts, but new code
//! should hold a session: on the degree-1 configuration grid the sessioned
//! sweep has measured several-fold faster than fresh per-configuration calls
//! (see the `session_vs_fresh` harness in `revterm-bench`).
//!
//! Every `NonTerminating` verdict carries a [`NonTerminationCertificate`]
//! that has already been re-validated by an independent exact checker
//! ([`validate_certificate`]); the prover never reports non-termination on
//! the basis of an unchecked synthesis result.  Certificate validation never
//! goes through the session caches.

#![warn(missing_docs)]

pub mod api;
mod certificate;
mod check1;
mod check2;
mod config;
mod error;
mod prover;
mod session;
mod sweep;

pub use api::{analysis_report, certificate_digest, lower_source, outcome_digest, program_hash};
pub use certificate::{
    validate_certificate, CertificateError, Check1Certificate, Check2Certificate,
    NonTerminationCertificate,
};
pub use check1::check1;
pub use check2::check2;
pub use config::{Budget, CheckKind, ProverConfig, ProverConfigBuilder, Strategy};
pub use error::Error;
pub use prover::{prove, prove_program, prove_with_configs, ProofResult, Verdict};
pub use revterm_absint::{AbstractState, Diagnostics};
pub use session::{ProveStats, ProverSession, SessionStats, NO_CONFIGS_LABEL};
pub use sweep::{default_sweep, degree1_sweep, quick_sweep, sweep, ConfigOutcome, SweepReport};
