//! RevTerm: proving non-termination by program reversal.
//!
//! This crate implements the paper's contribution — Algorithm 1 and the
//! BI-certificate machinery of Sections 4 and 5 — on top of the substrates
//! built in the sibling crates:
//!
//! * [`revterm_lang`] — the input language,
//! * [`revterm_ts`] — transition systems, reversal, resolutions of
//!   non-determinism,
//! * [`revterm_invgen`] — template-based inductive invariant generation,
//! * [`revterm_solver`] — the exact Farkas/Handelman entailment oracle,
//! * [`revterm_safety`] — the bounded safety (reachability) prover.
//!
//! # Quick start
//!
//! ```
//! use revterm::{prove, ProverConfig};
//! use revterm_lang::parse_program;
//! use revterm_ts::lower;
//!
//! // The paper's running example (Fig. 1).
//! let program = parse_program(
//!     "while x >= 9 do x := ndet(); y := 10 * x; while x <= y do x := x + 1; od od",
//! ).unwrap();
//! let ts = lower(&program).unwrap();
//! let verdict = prove(&ts, &ProverConfig::default());
//! assert!(verdict.is_non_terminating());
//! ```
//!
//! Every `NonTerminating` verdict carries a [`NonTerminationCertificate`]
//! that has already been re-validated by an independent exact checker
//! ([`validate_certificate`]); the prover never reports non-termination on
//! the basis of an unchecked synthesis result.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod certificate;
mod check1;
mod check2;
mod config;
mod prover;
mod sweep;

pub use certificate::{
    validate_certificate, CertificateError, Check1Certificate, Check2Certificate,
    NonTerminationCertificate,
};
pub use check1::check1;
pub use check2::check2;
pub use config::{CheckKind, ProverConfig, Strategy};
pub use prover::{prove, prove_program, prove_with_configs, ProofResult, Verdict};
pub use sweep::{default_sweep, quick_sweep, sweep, ConfigOutcome, SweepReport};
