//! Check 1 of Algorithm 1.
//!
//! Searches for a resolution of non-determinism `R_NA`, an initial
//! configuration `c` and an inductive invariant `I` of the restricted system
//! `T_{R_NA}` such that `c ∈ I(ℓ_init)` and `I(ℓ_out) = ∅`.  Success proves
//! non-termination without any safety-prover call (Section 5.2).

use crate::certificate::{Check1Certificate, NonTerminationCertificate};
use crate::config::{ProverConfig, Strategy};
use crate::prover::{BudgetGuard, TimedOut};
use crate::session::{memo, Caches, ProveStats, RestrictedEntry};
use revterm_invgen::{synthesize_invariant_budgeted, SampleSet, SynthesisOptions, TemplateParams};
use revterm_poly::Poly;
use revterm_safety::{find_initial_valuations, ndet_candidate_values};
use revterm_ts::interp::{run, Config, Valuation};
use revterm_ts::{Resolution, TransitionSystem};
use std::sync::Arc;

/// Enumerates candidate resolutions of non-determinism: every combination
/// (capped) of candidate polynomials for the non-deterministic assignment
/// transitions.  Candidate right-hand sides are constants drawn from the
/// program constants plus, for degree ≥ 1, copies of program variables and
/// `±1` offsets of them.
pub(crate) fn candidate_resolutions(
    ts: &TransitionSystem,
    config: &ProverConfig,
) -> Vec<Resolution> {
    let ndet_ids: Vec<usize> = ts.ndet_transitions().map(|t| t.id).collect();
    if ndet_ids.is_empty() {
        return vec![Resolution::empty()];
    }
    let mut rhs_candidates: Vec<Poly> = ndet_candidate_values(ts, config.search.grid)
        .into_iter()
        .map(|c| Poly::constant(revterm_num::Rat::from(c)))
        .collect();
    if config.resolution_degree >= 1 {
        for i in 0..ts.vars().len() {
            let x = Poly::var(ts.vars().unprimed(i));
            rhs_candidates.push(x.clone());
            rhs_candidates.push(&x + &Poly::one());
            rhs_candidates.push(&x - &Poly::one());
            rhs_candidates.push(-x);
        }
    }
    if config.resolution_degree >= 2 {
        for i in 0..ts.vars().len() {
            let x = Poly::var(ts.vars().unprimed(i));
            rhs_candidates.push(&x * &x);
        }
    }
    rhs_candidates.dedup();

    // Cartesian product over the non-deterministic transitions, capped.
    let mut resolutions: Vec<Resolution> = vec![Resolution::empty()];
    for &id in &ndet_ids {
        let mut next = Vec::new();
        for base in &resolutions {
            for rhs in &rhs_candidates {
                let mut r = base.clone();
                r.set(id, rhs.clone());
                next.push(r);
                if next.len() >= config.max_resolutions {
                    break;
                }
            }
            if next.len() >= config.max_resolutions {
                break;
            }
        }
        resolutions = next;
    }
    resolutions.truncate(config.max_resolutions);
    resolutions
}

/// Strategy-dependent synthesis options.
pub(crate) fn synthesis_options(
    config: &ProverConfig,
    forced_false: Option<revterm_ts::Loc>,
    require_initiation: bool,
) -> SynthesisOptions {
    let params = match config.strategy {
        Strategy::Houdini => config.params,
        // The guard-propagation strategy restricts the pool to interval atoms
        // plus guard atoms: modelled by forcing c >= 3 (guard atoms on) but
        // degree 1 and no octagon pairs (c capped at 1 would remove guards, so
        // we keep the caller's c but lower the degree).
        Strategy::GuardPropagation => TemplateParams::new(config.params.c.min(3), 1, 1),
    };
    SynthesisOptions {
        params,
        entailment: config.entailment.clone(),
        require_initiation,
        forced_false,
        max_iterations: 64,
    }
}

/// Runs Check 1 on a transition system.
///
/// One-shot wrapper around `check1_cached` with empty caches; prefer a
/// [`crate::ProverSession`] when running more than one configuration.  The
/// caller is expected to re-validate the returned certificate with
/// [`crate::validate_certificate`] (the session and [`crate::prove`] entry
/// points do).  If the configuration carries a [`crate::Budget`] that
/// expires mid-search, the search is abandoned and `None` is returned (use
/// [`crate::prove`] to distinguish a timeout from an exhausted search).
pub fn check1(ts: &TransitionSystem, config: &ProverConfig) -> Option<NonTerminationCertificate> {
    let guard = BudgetGuard::arm(&config.budget, 0);
    check1_cached(ts, config, &mut Caches::default(), &mut ProveStats::default(), &guard)
        .unwrap_or(None)
}

/// Check 1 with every derived artifact served from (and recorded into) the
/// session caches: candidate resolutions and preferred initial valuations
/// per search bounds, restricted systems and their atom pools per
/// resolution, divergence-probe traces per `(resolution, initial)` pair, and
/// memoized entailment queries.
///
/// The [`BudgetGuard`] is consulted at candidate boundaries (and before each
/// synthesis call); `Err(TimedOut)` aborts the search *between* memoized
/// computations, so every cache entry the call leaves behind is complete.
pub(crate) fn check1_cached(
    ts: &TransitionSystem,
    config: &ProverConfig,
    caches: &mut Caches,
    stats: &mut ProveStats,
    guard: &BudgetGuard,
) -> Result<Option<NonTerminationCertificate>, TimedOut> {
    let initials = caches.initials_for(ts, config, stats);
    if initials.is_empty() {
        return Ok(None);
    }
    let resolutions = caches.resolutions_for(ts, config, stats);
    let Caches { entail, lp_basis, restricted, .. } = caches;
    let mut synthesis_budget = 8usize;
    for resolution in resolutions {
        if guard.exhausted(entail.lookups) {
            return Err(TimedOut);
        }
        let entry = memo(
            restricted,
            resolution.clone(),
            &mut stats.artifact_cache_hits,
            &mut stats.artifact_cache_misses,
            || RestrictedEntry::new(ts.restrict(&resolution)),
        );
        let RestrictedEntry { system: restricted_system, pool, probes, invariants, .. } = entry;
        let restricted_system = &*restricted_system;
        for initial in initials.iter().take(config.max_initial_configs) {
            if guard.exhausted(entail.lookups) {
                return Err(TimedOut);
            }
            stats.candidates_tried += 1;
            // Cheap probe: run the (deterministic) restricted system; if it
            // reaches ℓ_out within the probe bound this initial configuration
            // is not diverging under this resolution.
            let probe_key = (initial.clone(), config.divergence_probe_steps);
            let trace = memo(
                probes,
                probe_key,
                &mut stats.probe_cache_hits,
                &mut stats.probe_cache_misses,
                || {
                    let start = Config::new(restricted_system.init_loc(), initial.clone());
                    run(
                        restricted_system,
                        &start,
                        &|_, _| revterm_num::Int::zero(),
                        config.divergence_probe_steps,
                    )
                },
            );
            let reached_terminal =
                trace.last().is_some_and(|c| c.loc == restricted_system.terminal_loc());
            if reached_terminal || trace.len() <= config.divergence_probe_steps / 2 {
                continue;
            }
            if synthesis_budget == 0 {
                return Ok(None);
            }
            synthesis_budget -= 1;

            let options = synthesis_options(config, Some(restricted_system.terminal_loc()), false);
            // The synthesized invariant is a pure function of the restricted
            // system, the probe trace (which seeds the samples) and the
            // synthesis inputs — all captured by this key — so it can be
            // shared across configurations that agree on them.
            let synth_key = (
                (initial.clone(), config.divergence_probe_steps),
                (options.params, options.entailment.clone()),
            );
            // Not expressed via `memo`: a budget-cut synthesis is not a
            // fixpoint and must not be cached (a later retry with a larger
            // budget would otherwise be served the truncated result).
            let invariant = if let Some(map) = invariants.get(&synth_key) {
                stats.artifact_cache_hits += 1;
                map.clone()
            } else {
                // Samples: everything the probe visited belongs to the set
                // the invariant must contain.
                let mut samples = SampleSet::new();
                for cfg in trace.iter() {
                    samples.add(cfg.loc, cfg.vals.clone());
                }
                stats.synthesis_calls += 1;
                let Some(map) = synthesize_invariant_budgeted(
                    restricted_system,
                    &samples,
                    &options,
                    pool,
                    entail,
                    lp_basis,
                    &guard.synthesis_budget(),
                ) else {
                    return Err(TimedOut);
                };
                stats.artifact_cache_misses += 1;
                invariants.insert(synth_key, map.clone());
                map
            };

            // Success condition: every transition into ℓ_out is blocked.
            // A closure contradiction is a Farkas derivation of `-1 ≥ 0`
            // over the individual premises, which is a feasible point of the
            // `implies_false` LP whenever its product budget admits
            // single-premise columns — so the fast path below can only skip
            // the LP, never disagree with it.
            let fast = config.entailment.interval_fast_path
                && config.entailment.max_product_size >= 1
                && config.entailment.max_product_degree >= 1;
            let blocked = restricted_system
                .transitions_to(restricted_system.terminal_loc())
                .filter(|t| t.source != restricted_system.terminal_loc())
                .all(|t| {
                    invariant.at(t.source).disjuncts().iter().all(|d| {
                        let mut premises: Vec<Poly> = d.atoms().to_vec();
                        premises.extend(t.relation.atoms().iter().cloned());
                        if fast
                            && revterm_absint::close_premises(premises.iter()).is_contradiction()
                        {
                            lp_basis.stats.absint_fast_paths += 1;
                            return true;
                        }
                        let premises: Arc<[Poly]> = premises.into();
                        entail.implies_false(&premises, &config.entailment, lp_basis)
                    })
                });
            if !blocked {
                continue;
            }
            // The initial valuation is in I(ℓ_init) by sample construction,
            // but double-check before emitting the certificate.
            if !invariant.at(restricted_system.init_loc()).holds_int(&initial.assignment()) {
                continue;
            }
            return Ok(Some(NonTerminationCertificate::Check1(Check1Certificate {
                resolution,
                invariant,
                initial: initial.clone(),
            })));
        }
    }
    Ok(None)
}

/// Orders the candidate initial valuations so that valuations from which the
/// program can take a step *into the program body* (rather than exiting
/// immediately to `ℓ_out`) come first, and thins the remainder to an evenly
/// spread sample.  Diverging executions necessarily start by entering the
/// body, so these candidates are by far the most promising.
pub(crate) fn preferred_initials(ts: &TransitionSystem, config: &ProverConfig) -> Vec<Valuation> {
    let all = find_initial_valuations(ts, &config.search);
    let ndet = ndet_candidate_values(ts, config.search.grid);
    let (mut preferred, rest): (Vec<Valuation>, Vec<Valuation>) = all.into_iter().partition(|v| {
        let cfg = Config::new(ts.init_loc(), v.clone());
        revterm_ts::interp::successors(ts, &cfg, &ndet)
            .iter()
            .any(|(_, succ)| succ.loc != ts.terminal_loc())
    });
    // Spread the non-preferred remainder (useful when the body is entered
    // unconditionally and every valuation is "preferred", or none is).
    let stride = (rest.len() / config.max_initial_configs.max(1)).max(1);
    preferred.extend(rest.into_iter().step_by(stride));
    preferred
}
