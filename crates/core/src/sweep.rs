//! Configuration sweeps (the paper's Section 6 evaluation protocol).
//!
//! The paper evaluates RevTerm by running every configuration — a choice of
//! check, SMT solver and template size `(c, d, D)` — separately and counting
//! a benchmark as proved non-terminating if *at least one* configuration
//! succeeds.  [`sweep`] reproduces that protocol and records which
//! configuration succeeded first together with its runtime, which is the raw
//! data behind Tables 1–4.

use crate::config::{CheckKind, ProverConfig, Strategy};
use crate::session::{ProveStats, ProverSession};
use revterm_invgen::TemplateParams;
use revterm_ts::TransitionSystem;
use std::time::Duration;

/// The outcome of one configuration on one benchmark.
#[derive(Debug, Clone)]
pub struct ConfigOutcome {
    /// The configuration label (`check1/houdini/(c=2,d=1,D=1)`).
    pub label: String,
    /// Which check the configuration ran.
    pub check: CheckKind,
    /// Which strategy (solver stand-in) the configuration used.
    pub strategy: Strategy,
    /// The template parameters.
    pub params: TemplateParams,
    /// Whether non-termination was proved.
    pub proved: bool,
    /// Whether the configuration's [`crate::Budget`] cut the run short (in
    /// which case `proved` is `false` but the configuration was not
    /// exhausted).
    pub timed_out: bool,
    /// Wall-clock time of this configuration.
    pub elapsed: Duration,
    /// Per-stage statistics of this configuration's run (candidates tried,
    /// synthesis/entailment calls, cache hits).
    pub stats: ProveStats,
}

/// The sweep result for one benchmark.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// Per-configuration outcomes, in sweep order.
    pub outcomes: Vec<ConfigOutcome>,
}

impl SweepReport {
    /// Returns `true` iff at least one configuration proved non-termination.
    pub fn proved(&self) -> bool {
        self.outcomes.iter().any(|o| o.proved)
    }

    /// The fastest successful configuration, if any.
    pub fn fastest_success(&self) -> Option<&ConfigOutcome> {
        self.outcomes.iter().filter(|o| o.proved).min_by_key(|o| o.elapsed)
    }

    /// Total time spent across all configurations.
    pub fn total_elapsed(&self) -> Duration {
        self.outcomes.iter().map(|o| o.elapsed).sum()
    }

    /// The successful configurations restricted to a check / strategy cell
    /// (used by the Table 3 harness).
    pub fn proved_with(&self, check: CheckKind, strategy: Strategy) -> bool {
        self.outcomes.iter().any(|o| o.proved && o.check == check && o.strategy == strategy)
    }

    /// Whether some configuration with template bounds `c ≤ max_c` and
    /// `d ≤ max_d` proved the benchmark (used by the Table 4 harness).
    pub fn proved_within(&self, max_c: usize, max_d: usize, max_degree: u32) -> bool {
        self.outcomes.iter().any(|o| {
            o.proved && o.params.c <= max_c && o.params.d <= max_d && o.params.degree <= max_degree
        })
    }
}

/// The default configuration grid of the reproduction: both checks, both
/// strategies, template sizes `c ∈ {1, 2, 3}`, `d ∈ {1, 2}` and degrees
/// `D ∈ {1, 2}`.
///
/// The paper sweeps `c, d ∈ [1, 5]` and `D ∈ [1, 2]`; its own Table 4 shows
/// that `c ≤ 3`, `d ≤ 2`, `D ≤ 2` already reaches every benchmark that the
/// full sweep reaches, so the reduced grid preserves the comparison while
/// keeping the exact-arithmetic sweep affordable.
pub fn default_sweep() -> Vec<ProverConfig> {
    let mut configs = Vec::new();
    for &check in &[CheckKind::Check1, CheckKind::Check2] {
        for &strategy in &[Strategy::Houdini, Strategy::GuardPropagation] {
            for &c in &[1usize, 2, 3] {
                for &d in &[1usize, 2] {
                    for &degree in &[1u32, 2] {
                        configs.push(
                            ProverConfig::builder()
                                .check(check)
                                .strategy(strategy)
                                .params(TemplateParams::new(c, d, degree))
                                .build(),
                        );
                    }
                }
            }
        }
    }
    configs
}

/// A small sweep used in tests and the quickstart example: Check 1 and
/// Check 2 with the default strategy and a single template size.
pub fn quick_sweep() -> Vec<ProverConfig> {
    vec![
        ProverConfig::default(),
        ProverConfig::builder().check(CheckKind::Check2).template(3, 1, 1).build(),
    ]
}

/// The degree-1 slice of [`default_sweep`]: both checks, both strategies,
/// `c ∈ {1, 2, 3}`, `d ∈ {1, 2}`, `D = 1` (24 configurations).
///
/// Degree-2 cells pay for Handelman products in every entailment call and
/// are orders of magnitude more expensive; harnesses that track sweep
/// performance (e.g. `session_vs_fresh` in `revterm-bench`) use this grid.
pub fn degree1_sweep() -> Vec<ProverConfig> {
    default_sweep().into_iter().filter(|c| c.params.degree == 1).collect()
}

/// Runs a configuration sweep on a transition system, stopping early once
/// `stop_after_success` successful configurations have been observed (pass
/// `usize::MAX` to run the full grid, as the paper's per-configuration tables
/// require).
///
/// Deprecated-style wrapper over [`ProverSession::sweep`] on a one-shot
/// session; prefer keeping the session when sweeping more than once (or when
/// also proving single configurations of the same system).
pub fn sweep(
    ts: &TransitionSystem,
    configs: &[ProverConfig],
    stop_after_success: usize,
) -> SweepReport {
    ProverSession::new(ts.clone()).sweep(configs, stop_after_success)
}

#[cfg(test)]
mod tests {
    use super::*;
    use revterm_lang::parse_program;
    use revterm_ts::lower;

    #[test]
    fn degree1_sweep_is_the_degree_one_slice() {
        let configs = degree1_sweep();
        assert_eq!(configs.len(), 2 * 2 * 3 * 2);
        assert!(configs.iter().all(|c| c.params.degree == 1));
    }

    #[test]
    fn default_sweep_covers_both_checks_and_strategies() {
        let configs = default_sweep();
        assert_eq!(configs.len(), 2 * 2 * 3 * 2 * 2);
        assert!(configs.iter().any(|c| c.check == CheckKind::Check1));
        assert!(configs.iter().any(|c| c.check == CheckKind::Check2));
        assert!(configs.iter().any(|c| c.strategy == Strategy::GuardPropagation));
        // Labels are unique.
        let mut labels: Vec<String> = configs.iter().map(|c| c.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), configs.len());
    }

    #[test]
    fn sweep_reports_first_success_and_statistics() {
        let ts = lower(&parse_program("while x >= 0 do x := x + 1; od").unwrap()).unwrap();
        let report = sweep(&ts, &quick_sweep(), 1);
        assert!(report.proved());
        let fastest = report.fastest_success().unwrap();
        assert!(fastest.proved);
        assert!(report.proved_with(fastest.check, fastest.strategy));
        assert!(report.proved_within(5, 5, 2));
        assert!(!report.proved_within(0, 0, 0));
        assert!(report.total_elapsed() >= fastest.elapsed);
    }

    #[test]
    fn sweep_on_terminating_program_reports_nothing() {
        let ts = lower(&parse_program("n := 0; while n <= 3 do n := n + 1; od").unwrap()).unwrap();
        let report = sweep(&ts, &quick_sweep(), 1);
        assert!(!report.proved());
        assert!(report.fastest_success().is_none());
        assert_eq!(report.outcomes.len(), quick_sweep().len());
    }
}
