//! The versioned prover-as-a-service wire API.
//!
//! This module defines the *content* of the `revterm-serve` protocol — the
//! serializable [`ProveRequest`] / [`ProveResponse`] types and the JSON
//! encoding they round-trip through — while the `revterm-serve` crate owns
//! the *transport* (sockets, line framing, the session pool and metrics).
//! Keeping the types here means every consumer (daemon, CLI client, bench
//! harnesses, tests) shares one definition, and the determinism contract can
//! be stated once:
//!
//! > **A verdict served by the daemon is bitwise-identical to the in-process
//! > verdict for the same request.**  The wire encodes verdicts together
//! > with [`certificate_digest`] / [`outcome_digest`] fingerprints computed
//! > from canonical textual renderings, so "bitwise-identical" is checkable
//! > across process boundaries without shipping whole certificates.
//!
//! # Framing and versioning
//!
//! The protocol is line-delimited JSON: one request object per line, one
//! response object per line, UTF-8, no pipelining requirements.  Every
//! object carries `"v": 1` ([`PROTOCOL_VERSION`]); servers reject other
//! versions with a structured error instead of guessing.  See `PROTOCOL.md`
//! at the repository root for the full grammar with examples.
//!
//! # JSON without dependencies
//!
//! The workspace has a zero-external-crate rule, so [`json`] is a minimal
//! hand-rolled JSON value type, parser and printer — enough for this
//! protocol (objects, arrays, strings, IEEE numbers, booleans, null), with
//! a recursion-depth cap so adversarial input cannot overflow the stack.

use crate::config::{Budget, ProverConfig};
use crate::error::Error;
use crate::prover::{ProofResult, Verdict};
use crate::session::ProveStats;
use crate::sweep::SweepReport;
use crate::CheckKind;
use revterm_solver::{LpEngine, LpStats};
use revterm_ts::TransitionSystem;
use std::hash::{Hash, Hasher};
use std::time::Duration;

pub mod json;

use json::Json;

/// The wire-protocol version this build speaks.
pub const PROTOCOL_VERSION: u64 = 1;

/// Parses and lowers program text with the same error split as
/// [`crate::ProverSession::from_source`]: [`Error::Parse`] for bad text,
/// [`Error::Analysis`] for lowering failures.  The wire `parse` operation
/// and the daemon's session pool (which must hash the system *before*
/// deciding whether a pooled session exists) both go through here.
///
/// # Errors
///
/// [`Error::Parse`] or [`Error::Analysis`] as described above.
pub fn lower_source(source: &str) -> Result<TransitionSystem, Error> {
    let program = revterm_lang::parse_program(source).map_err(Error::Parse)?;
    revterm_ts::lower(&program).map_err(|e| Error::Analysis(e.to_string()))
}

/// The workspace-standard fingerprint of a parsed program: FNV-1a over the
/// structure of its [`TransitionSystem`] (locations, variables, transition
/// relations).  The `revterm-serve` session pool keys sessions by this hash,
/// so textually different sources that lower to the same system share a
/// session.
pub fn program_hash(ts: &TransitionSystem) -> u64 {
    let mut hasher = revterm_num::Fnv64::new();
    ts.hash(&mut hasher);
    hasher.finish()
}

/// A cross-process-stable fingerprint of a certificate: FNV-1a folded over
/// canonical textual renderings (resolution, invariants, witnesses with
/// variable names).  Two equal digests mean the certificates render
/// identically component by component — the "bitwise-identical verdict"
/// check of the serve acceptance gate.
pub fn certificate_digest(cert: &crate::NonTerminationCertificate, ts: &TransitionSystem) -> u64 {
    let mut hasher = revterm_num::Fnv64::new();
    let vars = ts.vars();
    let loc_names = |l| ts.loc_name(l).to_string();
    match cert {
        crate::NonTerminationCertificate::Check1(c) => {
            "check1".hash(&mut hasher);
            c.resolution.display_with(ts).hash(&mut hasher);
            c.invariant.display_with(vars, &loc_names).hash(&mut hasher);
            c.initial.to_string().hash(&mut hasher);
        }
        crate::NonTerminationCertificate::Check2(c) => {
            "check2".hash(&mut hasher);
            c.resolution.display_with(ts).hash(&mut hasher);
            c.tilde_invariant.display_with(vars, &loc_names).hash(&mut hasher);
            c.theta.display_with(vars).hash(&mut hasher);
            c.backward_invariant.display_with(vars, &loc_names).hash(&mut hasher);
            for config in &c.witness_path {
                config.to_string().hash(&mut hasher);
            }
        }
    }
    hasher.finish()
}

/// The fingerprint of a whole [`ProofResult`]: the verdict kind, the
/// configuration label and (for proofs) the [`certificate_digest`].
pub fn outcome_digest(result: &ProofResult, ts: &TransitionSystem) -> u64 {
    let mut hasher = revterm_num::Fnv64::new();
    result.config_label.hash(&mut hasher);
    match &result.verdict {
        Verdict::NonTerminating(cert) => {
            "non-terminating".hash(&mut hasher);
            certificate_digest(cert, ts).hash(&mut hasher);
        }
        Verdict::Unknown => "unknown".hash(&mut hasher),
        Verdict::Timeout => "timeout".hash(&mut hasher),
    }
    hasher.finish()
}

/// Renders a `u64` fingerprint in the fixed-width hex form used on the wire.
pub fn hex_digest(digest: u64) -> String {
    format!("{digest:016x}")
}

fn parse_hex_digest(s: &str) -> Result<u64, Error> {
    u64::from_str_radix(s, 16).map_err(|_| Error::Protocol(format!("bad digest {s:?}")))
}

// ---------------------------------------------------------------------------
// ProverConfig <-> JSON
// ---------------------------------------------------------------------------

fn lp_engine_name(engine: LpEngine) -> &'static str {
    match engine {
        LpEngine::Revised => "revised",
        LpEngine::SparseTableau => "sparse",
        LpEngine::Dense => "dense",
    }
}

fn lp_engine_from_name(name: &str) -> Result<LpEngine, Error> {
    match name {
        "revised" => Ok(LpEngine::Revised),
        "sparse" => Ok(LpEngine::SparseTableau),
        "dense" => Ok(LpEngine::Dense),
        other => Err(Error::Protocol(format!("unknown lp engine {other:?}"))),
    }
}

/// Serializes a full configuration.  The labelled axes travel as the
/// [`ProverConfig::label`] string; every non-labelled field is explicit, so
/// the encoding round-trips configurations that stray from the defaults.
pub fn config_to_json(config: &ProverConfig) -> Json {
    Json::obj(vec![
        ("label", Json::from(config.label())),
        ("resolution_degree", Json::from(config.resolution_degree as u64)),
        (
            "search",
            Json::obj(vec![
                ("max_steps", Json::from(config.search.max_steps as u64)),
                ("max_configs", Json::from(config.search.max_configs as u64)),
                ("max_initial", Json::from(config.search.max_initial as u64)),
                ("grid", Json::from(config.search.grid)),
            ]),
        ),
        (
            "entailment",
            Json::obj(vec![
                ("max_product_size", Json::from(config.entailment.max_product_size as u64)),
                ("max_product_degree", Json::from(config.entailment.max_product_degree as u64)),
                ("use_unsat_fallback", Json::Bool(config.entailment.use_unsat_fallback)),
                ("lp_engine", Json::from(lp_engine_name(config.entailment.lp_engine))),
                ("interval_fast_path", Json::Bool(config.entailment.interval_fast_path)),
            ]),
        ),
        ("max_resolutions", Json::from(config.max_resolutions as u64)),
        ("max_initial_configs", Json::from(config.max_initial_configs as u64)),
        ("divergence_probe_steps", Json::from(config.divergence_probe_steps as u64)),
        ("absint", Json::Bool(config.absint)),
        (
            "budget",
            Json::obj(vec![
                (
                    "time_limit_ms",
                    match config.budget.time_limit {
                        Some(limit) => Json::from(limit.as_millis() as u64),
                        None => Json::Null,
                    },
                ),
                (
                    "max_entailment_calls",
                    match config.budget.max_entailment_calls {
                        Some(cap) => Json::from(cap),
                        None => Json::Null,
                    },
                ),
            ]),
        ),
    ])
}

/// Deserializes a configuration: either a bare label string (non-labelled
/// fields take defaults) or the full object form of [`config_to_json`].
pub fn config_from_json(value: &Json) -> Result<ProverConfig, Error> {
    if let Some(label) = value.as_str() {
        return ProverConfig::parse_label(label);
    }
    let obj = value.as_obj_or("config")?;
    let label = obj.str_field("label")?;
    let mut config = ProverConfig::parse_label(label)?;
    config.resolution_degree = obj.u64_field("resolution_degree")? as u32;
    let search = obj.obj_field("search")?;
    config.search.max_steps = search.u64_field("max_steps")? as usize;
    config.search.max_configs = search.u64_field("max_configs")? as usize;
    config.search.max_initial = search.u64_field("max_initial")? as usize;
    config.search.grid = search.i64_field("grid")?;
    let entail = obj.obj_field("entailment")?;
    config.entailment.max_product_size = entail.u64_field("max_product_size")? as usize;
    config.entailment.max_product_degree = entail.u64_field("max_product_degree")? as u32;
    config.entailment.use_unsat_fallback = entail.bool_field("use_unsat_fallback")?;
    config.entailment.lp_engine = lp_engine_from_name(entail.str_field("lp_engine")?)?;
    config.entailment.interval_fast_path = entail.bool_field("interval_fast_path")?;
    config.max_resolutions = obj.u64_field("max_resolutions")? as usize;
    config.max_initial_configs = obj.u64_field("max_initial_configs")? as usize;
    config.divergence_probe_steps = obj.u64_field("divergence_probe_steps")? as usize;
    config.absint = obj.bool_field("absint")?;
    let budget = obj.obj_field("budget")?;
    config.budget = Budget {
        time_limit: budget.opt_u64_field("time_limit_ms")?.map(Duration::from_millis),
        max_entailment_calls: budget.opt_u64_field("max_entailment_calls")?,
    };
    Ok(config)
}

// ---------------------------------------------------------------------------
// ProveStats <-> JSON
// ---------------------------------------------------------------------------

/// Serializes per-stage statistics (every counter, including the LP block).
pub fn stats_to_json(stats: &ProveStats) -> Json {
    Json::obj(vec![
        ("candidates_tried", Json::from(stats.candidates_tried as u64)),
        ("synthesis_calls", Json::from(stats.synthesis_calls as u64)),
        ("entailment_calls", Json::from(stats.entailment_calls)),
        ("entailment_cache_hits", Json::from(stats.entailment_cache_hits)),
        ("probe_cache_hits", Json::from(stats.probe_cache_hits)),
        ("probe_cache_misses", Json::from(stats.probe_cache_misses)),
        ("artifact_cache_hits", Json::from(stats.artifact_cache_hits)),
        ("artifact_cache_misses", Json::from(stats.artifact_cache_misses)),
        ("absint_prunes", Json::from(stats.absint_prunes)),
        (
            "lp",
            Json::obj(vec![
                ("solves", Json::from(stats.lp.solves)),
                ("pivots", Json::from(stats.lp.pivots)),
                ("refactorizations", Json::from(stats.lp.refactorizations)),
                ("warm_lookups", Json::from(stats.lp.warm_lookups)),
                ("warm_hits", Json::from(stats.lp.warm_hits)),
                ("absint_fast_paths", Json::from(stats.lp.absint_fast_paths)),
            ]),
        ),
    ])
}

/// Deserializes [`stats_to_json`].
pub fn stats_from_json(value: &Json) -> Result<ProveStats, Error> {
    let obj = value.as_obj_or("stats")?;
    let lp = obj.obj_field("lp")?;
    Ok(ProveStats {
        candidates_tried: obj.u64_field("candidates_tried")? as usize,
        synthesis_calls: obj.u64_field("synthesis_calls")? as usize,
        entailment_calls: obj.u64_field("entailment_calls")?,
        entailment_cache_hits: obj.u64_field("entailment_cache_hits")?,
        probe_cache_hits: obj.u64_field("probe_cache_hits")?,
        probe_cache_misses: obj.u64_field("probe_cache_misses")?,
        artifact_cache_hits: obj.u64_field("artifact_cache_hits")?,
        artifact_cache_misses: obj.u64_field("artifact_cache_misses")?,
        absint_prunes: obj.u64_field("absint_prunes")?,
        lp: LpStats {
            solves: lp.u64_field("solves")?,
            pivots: lp.u64_field("pivots")?,
            refactorizations: lp.u64_field("refactorizations")?,
            warm_lookups: lp.u64_field("warm_lookups")?,
            warm_hits: lp.u64_field("warm_hits")?,
            absint_fast_paths: lp.u64_field("absint_fast_paths")?,
        },
    })
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// The body of a request: one of the protocol's operations.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Parse + lower a program; respond with its fingerprint and shape.
    Parse {
        /// Program text.
        source: String,
    },
    /// Prove non-termination, trying the configurations in order
    /// (first success wins — [`crate::ProverSession::prove_first`]).
    Prove {
        /// Program text.
        source: String,
        /// Configurations to try; empty means the server default
        /// ([`crate::quick_sweep`]).
        configs: Vec<ProverConfig>,
        /// Whole-request wall-clock deadline in milliseconds, distributed
        /// over the configurations by the server (each configuration's own
        /// [`Budget`] still applies on top).
        deadline_ms: Option<u64>,
    },
    /// Run a configuration sweep and report every outcome
    /// ([`crate::ProverSession::sweep`]).
    Sweep {
        /// Program text.
        source: String,
        /// Configurations to sweep; empty means the server default
        /// ([`crate::degree1_sweep`]).
        configs: Vec<ProverConfig>,
        /// Stop after this many successes (0 is normalized to "run all").
        stop_after: usize,
        /// Whole-request wall-clock deadline in milliseconds.
        deadline_ms: Option<u64>,
    },
    /// Run the abstract-interpretation pre-analysis and respond with the
    /// same textual report `revterm analyze` prints.
    Analyze {
        /// Program text.
        source: String,
    },
    /// Session-pool statistics (occupancy, hits, evictions).
    Stats,
    /// Full server metrics (per-operation counters, latency histogram,
    /// aggregated prover statistics).
    Metrics,
    /// Stop accepting connections and shut the daemon down.
    Shutdown,
}

impl RequestBody {
    /// The operation name on the wire.
    pub fn op(&self) -> &'static str {
        match self {
            RequestBody::Parse { .. } => "parse",
            RequestBody::Prove { .. } => "prove",
            RequestBody::Sweep { .. } => "sweep",
            RequestBody::Analyze { .. } => "analyze",
            RequestBody::Stats => "stats",
            RequestBody::Metrics => "metrics",
            RequestBody::Shutdown => "shutdown",
        }
    }
}

/// One request of the versioned wire API.
#[derive(Debug, Clone, PartialEq)]
pub struct ProveRequest {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: u64,
    /// The operation.
    pub body: RequestBody,
}

impl ProveRequest {
    /// Serializes the request (always stamps [`PROTOCOL_VERSION`]).
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(&str, Json)> = vec![
            ("v", Json::from(PROTOCOL_VERSION)),
            ("id", Json::from(self.id)),
            ("op", Json::from(self.body.op())),
        ];
        match &self.body {
            RequestBody::Parse { source } | RequestBody::Analyze { source } => {
                fields.push(("source", Json::from(source.clone())));
            }
            RequestBody::Prove { source, configs, deadline_ms } => {
                fields.push(("source", Json::from(source.clone())));
                fields.push(("configs", Json::Arr(configs.iter().map(config_to_json).collect())));
                if let Some(ms) = deadline_ms {
                    fields.push(("deadline_ms", Json::from(*ms)));
                }
            }
            RequestBody::Sweep { source, configs, stop_after, deadline_ms } => {
                fields.push(("source", Json::from(source.clone())));
                fields.push(("configs", Json::Arr(configs.iter().map(config_to_json).collect())));
                fields.push(("stop_after", Json::from(*stop_after as u64)));
                if let Some(ms) = deadline_ms {
                    fields.push(("deadline_ms", Json::from(*ms)));
                }
            }
            RequestBody::Stats | RequestBody::Metrics | RequestBody::Shutdown => {}
        }
        Json::obj(fields)
    }

    /// Deserializes and version-checks a request.
    ///
    /// # Errors
    ///
    /// [`Error::Protocol`] on a version mismatch, an unknown operation or a
    /// missing/mistyped field — the structured errors the daemon reports
    /// instead of dying.
    pub fn from_json(value: &Json) -> Result<ProveRequest, Error> {
        let obj = value.as_obj_or("request")?;
        let version = obj.u64_field("v")?;
        if version != PROTOCOL_VERSION {
            return Err(Error::Protocol(format!(
                "unsupported protocol version {version} (this build speaks {PROTOCOL_VERSION})"
            )));
        }
        let id = obj.opt_u64_field("id")?.unwrap_or(0);
        let op = obj.str_field("op")?;
        let source = || obj.str_field("source").map(str::to_string);
        let configs = || -> Result<Vec<ProverConfig>, Error> {
            match obj.get("configs") {
                None | Some(Json::Null) => Ok(Vec::new()),
                Some(Json::Arr(items)) => items.iter().map(config_from_json).collect(),
                Some(other) => {
                    Err(Error::Protocol(format!("configs must be an array, got {other}")))
                }
            }
        };
        let body = match op {
            "parse" => RequestBody::Parse { source: source()? },
            "analyze" => RequestBody::Analyze { source: source()? },
            "prove" => RequestBody::Prove {
                source: source()?,
                configs: configs()?,
                deadline_ms: obj.opt_u64_field("deadline_ms")?,
            },
            "sweep" => RequestBody::Sweep {
                source: source()?,
                configs: configs()?,
                stop_after: obj.opt_u64_field("stop_after")?.unwrap_or(0) as usize,
                deadline_ms: obj.opt_u64_field("deadline_ms")?,
            },
            "stats" => RequestBody::Stats,
            "metrics" => RequestBody::Metrics,
            "shutdown" => RequestBody::Shutdown,
            other => return Err(Error::Protocol(format!("unknown op {other:?}"))),
        };
        Ok(ProveRequest { id, body })
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// The wire form of a certificate: its producing check, the
/// [`certificate_digest`] fingerprint and human-readable renderings.  Full
/// structural certificates stay in-process; the digest is the cross-process
/// identity the acceptance gate compares.
#[derive(Debug, Clone, PartialEq)]
pub struct WireCertificate {
    /// Which check produced the certificate.
    pub check: CheckKind,
    /// The [`certificate_digest`] fingerprint.
    pub digest: u64,
    /// `NonTerminationCertificate::summary` of the certificate.
    pub summary: String,
}

/// The outcome of one configuration (or of a `prove` request as a whole) on
/// the wire: everything a [`ProofResult`] carries, in serializable form.
#[derive(Debug, Clone, PartialEq)]
pub struct WireOutcome {
    /// The configuration label that produced the verdict.
    pub label: String,
    /// `"non-terminating"`, `"unknown"` or `"timeout"`.
    pub verdict: String,
    /// The [`outcome_digest`] fingerprint of the whole result.
    pub digest: u64,
    /// Wall-clock microseconds spent.
    pub elapsed_us: u64,
    /// Per-stage statistics.
    pub stats: ProveStats,
    /// Present iff the verdict is `"non-terminating"`.
    pub certificate: Option<WireCertificate>,
}

impl WireOutcome {
    /// Builds the wire outcome of an in-process [`ProofResult`].
    pub fn from_result(result: &ProofResult, ts: &TransitionSystem) -> WireOutcome {
        let verdict = match &result.verdict {
            Verdict::NonTerminating(_) => "non-terminating",
            Verdict::Unknown => "unknown",
            Verdict::Timeout => "timeout",
        };
        WireOutcome {
            label: result.config_label.clone(),
            verdict: verdict.to_string(),
            digest: outcome_digest(result, ts),
            elapsed_us: result.elapsed.as_micros() as u64,
            stats: result.stats,
            certificate: result.certificate().map(|cert| WireCertificate {
                check: cert.check_kind(),
                digest: certificate_digest(cert, ts),
                summary: cert.summary(ts),
            }),
        }
    }

    /// Serializes the outcome.
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(&str, Json)> = vec![
            ("label", Json::from(self.label.clone())),
            ("verdict", Json::from(self.verdict.clone())),
            ("digest", Json::from(hex_digest(self.digest))),
            ("elapsed_us", Json::from(self.elapsed_us)),
            ("stats", stats_to_json(&self.stats)),
        ];
        if let Some(cert) = &self.certificate {
            fields.push((
                "certificate",
                Json::obj(vec![
                    (
                        "check",
                        Json::from(match cert.check {
                            CheckKind::Check1 => "check1",
                            CheckKind::Check2 => "check2",
                        }),
                    ),
                    ("digest", Json::from(hex_digest(cert.digest))),
                    ("summary", Json::from(cert.summary.clone())),
                ]),
            ));
        }
        Json::obj(fields)
    }

    /// Deserializes [`WireOutcome::to_json`].
    pub fn from_json(value: &Json) -> Result<WireOutcome, Error> {
        let obj = value.as_obj_or("outcome")?;
        let certificate = match obj.get("certificate") {
            None | Some(Json::Null) => None,
            Some(cert) => {
                let cert = cert.as_obj_or("certificate")?;
                Some(WireCertificate {
                    check: match cert.str_field("check")? {
                        "check1" => CheckKind::Check1,
                        "check2" => CheckKind::Check2,
                        other => return Err(Error::Protocol(format!("unknown check {other:?}"))),
                    },
                    digest: parse_hex_digest(cert.str_field("digest")?)?,
                    summary: cert.str_field("summary")?.to_string(),
                })
            }
        };
        Ok(WireOutcome {
            label: obj.str_field("label")?.to_string(),
            verdict: obj.str_field("verdict")?.to_string(),
            digest: parse_hex_digest(obj.str_field("digest")?)?,
            elapsed_us: obj.u64_field("elapsed_us")?,
            stats: stats_from_json(obj.field("stats")?)?,
            certificate,
        })
    }

    /// Returns `true` iff the wire verdict is `"non-terminating"`.
    pub fn is_non_terminating(&self) -> bool {
        self.verdict == "non-terminating"
    }

    /// Returns `true` iff the wire verdict is `"timeout"`.
    pub fn is_timeout(&self) -> bool {
        self.verdict == "timeout"
    }
}

/// The body of a response.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// Answer to `parse`.
    Parsed {
        /// [`program_hash`] of the lowered system (the session-pool key).
        program_hash: u64,
        /// Number of locations.
        num_locs: usize,
        /// Number of program variables.
        num_vars: usize,
        /// Number of transitions.
        num_transitions: usize,
    },
    /// Answer to `prove`.
    Proved {
        /// The outcome.
        outcome: WireOutcome,
        /// Whether the request was served from a pooled (warm) session.
        pool_hit: bool,
        /// [`program_hash`] of the proved system.
        program_hash: u64,
    },
    /// Answer to `sweep`.
    Swept {
        /// Per-configuration outcomes in sweep order.
        outcomes: Vec<WireOutcome>,
        /// Whether the request was served from a pooled (warm) session.
        pool_hit: bool,
        /// [`program_hash`] of the swept system.
        program_hash: u64,
    },
    /// Answer to `analyze`: the textual pre-analysis report.
    Analyzed {
        /// The report (same text as `revterm analyze`).
        report: String,
    },
    /// Answer to `stats` / `metrics`: a server-defined JSON object (the
    /// daemon documents its shape; core treats it as opaque).
    Opaque(Json),
    /// Answer to `shutdown`.
    ShutdownAck,
    /// Any failure, as a structured error (`code` from [`Error::code`]).
    Failed(Error),
}

/// One response of the versioned wire API.
#[derive(Debug, Clone, PartialEq)]
pub struct ProveResponse {
    /// The correlation id echoed from the request (0 when the request was
    /// too malformed to carry one).
    pub id: u64,
    /// The body.
    pub body: ResponseBody,
}

impl ProveResponse {
    /// Shorthand for an error response.
    pub fn fail(id: u64, error: Error) -> ProveResponse {
        ProveResponse { id, body: ResponseBody::Failed(error) }
    }

    /// Serializes the response (always stamps [`PROTOCOL_VERSION`]).
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(&str, Json)> = vec![
            ("v", Json::from(PROTOCOL_VERSION)),
            ("id", Json::from(self.id)),
            ("ok", Json::Bool(!matches!(self.body, ResponseBody::Failed(_)))),
        ];
        match &self.body {
            ResponseBody::Parsed { program_hash, num_locs, num_vars, num_transitions } => {
                fields.push(("op", Json::from("parse")));
                fields.push(("program_hash", Json::from(hex_digest(*program_hash))));
                fields.push(("num_locs", Json::from(*num_locs as u64)));
                fields.push(("num_vars", Json::from(*num_vars as u64)));
                fields.push(("num_transitions", Json::from(*num_transitions as u64)));
            }
            ResponseBody::Proved { outcome, pool_hit, program_hash } => {
                fields.push(("op", Json::from("prove")));
                fields.push(("outcome", outcome.to_json()));
                fields.push(("pool_hit", Json::Bool(*pool_hit)));
                fields.push(("program_hash", Json::from(hex_digest(*program_hash))));
            }
            ResponseBody::Swept { outcomes, pool_hit, program_hash } => {
                fields.push(("op", Json::from("sweep")));
                fields.push((
                    "outcomes",
                    Json::Arr(outcomes.iter().map(WireOutcome::to_json).collect()),
                ));
                fields.push(("pool_hit", Json::Bool(*pool_hit)));
                fields.push(("program_hash", Json::from(hex_digest(*program_hash))));
            }
            ResponseBody::Analyzed { report } => {
                fields.push(("op", Json::from("analyze")));
                fields.push(("report", Json::from(report.clone())));
            }
            ResponseBody::Opaque(value) => {
                fields.push(("op", Json::from("stats")));
                fields.push(("data", value.clone()));
            }
            ResponseBody::ShutdownAck => {
                fields.push(("op", Json::from("shutdown")));
            }
            ResponseBody::Failed(error) => {
                fields.push((
                    "error",
                    Json::obj(vec![
                        ("code", Json::from(error.code())),
                        ("message", Json::from(error.message())),
                    ]),
                ));
            }
        }
        Json::obj(fields)
    }

    /// Deserializes and version-checks a response.
    ///
    /// # Errors
    ///
    /// [`Error::Protocol`] on malformed input or a version mismatch.
    pub fn from_json(value: &Json) -> Result<ProveResponse, Error> {
        let obj = value.as_obj_or("response")?;
        let version = obj.u64_field("v")?;
        if version != PROTOCOL_VERSION {
            return Err(Error::Protocol(format!("unsupported protocol version {version}")));
        }
        let id = obj.opt_u64_field("id")?.unwrap_or(0);
        if !obj.bool_field("ok")? {
            let error = obj.obj_field("error")?;
            let code = error.str_field("code")?;
            let message = error.str_field("message")?;
            return Ok(ProveResponse {
                id,
                body: ResponseBody::Failed(Error::from_code(code, message)),
            });
        }
        let body = match obj.str_field("op")? {
            "parse" => ResponseBody::Parsed {
                program_hash: parse_hex_digest(obj.str_field("program_hash")?)?,
                num_locs: obj.u64_field("num_locs")? as usize,
                num_vars: obj.u64_field("num_vars")? as usize,
                num_transitions: obj.u64_field("num_transitions")? as usize,
            },
            "prove" => ResponseBody::Proved {
                outcome: WireOutcome::from_json(obj.field("outcome")?)?,
                pool_hit: obj.bool_field("pool_hit")?,
                program_hash: parse_hex_digest(obj.str_field("program_hash")?)?,
            },
            "sweep" => {
                let outcomes = match obj.field("outcomes")? {
                    Json::Arr(items) => {
                        items.iter().map(WireOutcome::from_json).collect::<Result<_, _>>()?
                    }
                    other => {
                        return Err(Error::Protocol(format!(
                            "outcomes must be an array, got {other}"
                        )))
                    }
                };
                ResponseBody::Swept {
                    outcomes,
                    pool_hit: obj.bool_field("pool_hit")?,
                    program_hash: parse_hex_digest(obj.str_field("program_hash")?)?,
                }
            }
            "analyze" => ResponseBody::Analyzed { report: obj.str_field("report")?.to_string() },
            "stats" => ResponseBody::Opaque(obj.field("data")?.clone()),
            "shutdown" => ResponseBody::ShutdownAck,
            other => return Err(Error::Protocol(format!("unknown response op {other:?}"))),
        };
        Ok(ProveResponse { id, body })
    }
}

/// Builds the wire outcomes of a [`SweepReport`].
///
/// Sweep outcomes do not carry certificates (the report drops them), so the
/// digest covers the label/verdict pair only; `prove` responses carry the
/// full certificate digest.
pub fn sweep_to_outcomes(report: &SweepReport) -> Vec<WireOutcome> {
    report
        .outcomes
        .iter()
        .map(|o| {
            let verdict = if o.proved {
                "non-terminating"
            } else if o.timed_out {
                "timeout"
            } else {
                "unknown"
            };
            let mut hasher = revterm_num::Fnv64::new();
            o.label.hash(&mut hasher);
            verdict.hash(&mut hasher);
            WireOutcome {
                label: o.label.clone(),
                verdict: verdict.to_string(),
                digest: hasher.finish(),
                elapsed_us: o.elapsed.as_micros() as u64,
                stats: o.stats,
                certificate: None,
            }
        })
        .collect()
}

/// Renders the interval/sign pre-analysis report of a system — the exact
/// text the `revterm analyze` subcommand prints and the `analyze` wire
/// operation returns (one shared renderer keeps the two bitwise-identical).
pub fn analysis_report(ts: &TransitionSystem) -> String {
    use std::fmt::Write as _;
    let state = revterm_absint::analyze(ts);
    let names = ts.vars().names();
    let mut out = String::new();
    let _ = writeln!(out, "pre-analysis: {} locations, {} variables", ts.num_locs(), names.len());
    for loc in ts.locations() {
        match state.env(loc) {
            None => {
                let _ = writeln!(out, "  {:<8} unreachable", ts.loc_name(loc));
            }
            Some(env) => {
                let bounds: Vec<String> =
                    env.iter().enumerate().map(|(i, iv)| format!("{} in {iv}", names[i])).collect();
                let _ = writeln!(out, "  {:<8} {}", ts.loc_name(loc), bounds.join(", "));
            }
        }
    }
    let diag = revterm_absint::diagnostics(ts, &state);
    if !diag.unreachable_locs.is_empty() {
        let locs: Vec<&str> = diag.unreachable_locs.iter().map(|&l| ts.loc_name(l)).collect();
        let _ = writeln!(out, "unreachable locations: {}", locs.join(", "));
    }
    if !diag.unused_vars.is_empty() {
        let vars: Vec<&str> = diag.unused_vars.iter().map(|&i| names[i].as_str()).collect();
        let _ = writeln!(out, "unused variables: {}", vars.join(", "));
    }
    if !diag.constant_vars.is_empty() {
        let consts: Vec<String> =
            diag.constant_vars.iter().map(|(i, v)| format!("{} = {v}", names[*i])).collect();
        let _ = writeln!(out, "constant variables: {}", consts.join(", "));
    }
    if !diag.constant_guards.is_empty() {
        let guards: Vec<String> = diag
            .constant_guards
            .iter()
            .map(|(id, fires)| {
                format!("t{id} {}", if *fires { "always fires" } else { "never fires" })
            })
            .collect();
        let _ = writeln!(out, "decided guards: {}", guards.join(", "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProverConfig, ProverSession};

    const RUNNING: &str =
        "while x >= 9 do x := ndet(); y := 10 * x; while x <= y do x := x + 1; od od";

    #[test]
    fn config_round_trips_through_json_including_non_default_fields() {
        for config in crate::degree1_sweep() {
            let json = config_to_json(&config);
            assert_eq!(config_from_json(&json).unwrap(), config);
            // The compact label form round-trips grid cells too.
            let label = Json::from(config.label());
            assert_eq!(config_from_json(&label).unwrap(), config);
        }
        // Non-default fields survive the object form (and would be lost by
        // the label form, which is why the full encoding exists).
        let mut config = ProverConfig::builder()
            .resolution_degree(2)
            .max_resolutions(7)
            .absint(false)
            .time_limit(Duration::from_millis(250))
            .build();
        config.entailment.lp_engine = LpEngine::Dense;
        config.budget.max_entailment_calls = Some(12345);
        config.search.grid = 5;
        let roundtripped = config_from_json(&config_to_json(&config)).unwrap();
        assert_eq!(roundtripped, config);
    }

    #[test]
    fn stats_round_trip_through_json() {
        let mut stats = ProveStats {
            candidates_tried: 3,
            synthesis_calls: 2,
            entailment_calls: 101,
            entailment_cache_hits: 57,
            probe_cache_hits: 9,
            probe_cache_misses: 4,
            artifact_cache_hits: 8,
            artifact_cache_misses: 6,
            absint_prunes: 1,
            ..Default::default()
        };
        stats.lp.solves = 44;
        stats.lp.pivots = 1234;
        stats.lp.warm_lookups = 44;
        stats.lp.warm_hits = 11;
        assert_eq!(stats_from_json(&stats_to_json(&stats)).unwrap(), stats);
    }

    #[test]
    fn requests_round_trip_through_json() {
        let requests = vec![
            ProveRequest { id: 1, body: RequestBody::Parse { source: RUNNING.into() } },
            ProveRequest {
                id: 2,
                body: RequestBody::Prove {
                    source: RUNNING.into(),
                    configs: crate::quick_sweep(),
                    deadline_ms: Some(5000),
                },
            },
            ProveRequest {
                id: 3,
                body: RequestBody::Sweep {
                    source: "while true do skip; od".into(),
                    configs: Vec::new(),
                    stop_after: 1,
                    deadline_ms: None,
                },
            },
            ProveRequest { id: 4, body: RequestBody::Analyze { source: "x := 1;".into() } },
            ProveRequest { id: 5, body: RequestBody::Stats },
            ProveRequest { id: 6, body: RequestBody::Metrics },
            ProveRequest { id: 7, body: RequestBody::Shutdown },
        ];
        for request in requests {
            let line = request.to_json().to_string();
            let parsed = ProveRequest::from_json(&json::parse_json(&line).unwrap()).unwrap();
            assert_eq!(parsed, request, "round-trip failed for {line}");
        }
    }

    #[test]
    fn version_mismatch_is_a_structured_protocol_error() {
        let wrong = r#"{"v": 99, "op": "stats", "id": 1}"#;
        let err = ProveRequest::from_json(&json::parse_json(wrong).unwrap()).unwrap_err();
        assert!(matches!(err, Error::Protocol(_)), "{err}");
        assert!(err.to_string().contains("99"));
        let unknown_op = r#"{"v": 1, "op": "frobnicate"}"#;
        let err = ProveRequest::from_json(&json::parse_json(unknown_op).unwrap()).unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn responses_round_trip_through_json() {
        let mut session = ProverSession::from_source(RUNNING).unwrap();
        let result = session.prove(&ProverConfig::default());
        assert!(result.is_non_terminating());
        let outcome = WireOutcome::from_result(&result, session.ts());
        let hash = program_hash(session.ts());
        let responses = vec![
            ProveResponse {
                id: 1,
                body: ResponseBody::Parsed {
                    program_hash: hash,
                    num_locs: 4,
                    num_vars: 2,
                    num_transitions: 7,
                },
            },
            ProveResponse {
                id: 2,
                body: ResponseBody::Proved {
                    outcome: outcome.clone(),
                    pool_hit: true,
                    program_hash: hash,
                },
            },
            ProveResponse {
                id: 3,
                body: ResponseBody::Swept {
                    outcomes: vec![outcome],
                    pool_hit: false,
                    program_hash: hash,
                },
            },
            ProveResponse { id: 4, body: ResponseBody::Analyzed { report: "r\n".into() } },
            ProveResponse {
                id: 5,
                body: ResponseBody::Opaque(Json::obj(vec![("x", Json::from(1u64))])),
            },
            ProveResponse { id: 6, body: ResponseBody::ShutdownAck },
            ProveResponse::fail(7, Error::Timeout),
            ProveResponse::fail(8, Error::Parse("bad token".into())),
        ];
        for response in responses {
            let line = response.to_json().to_string();
            let parsed = ProveResponse::from_json(&json::parse_json(&line).unwrap()).unwrap();
            assert_eq!(parsed, response, "round-trip failed for {line}");
        }
    }

    #[test]
    fn certificate_digest_is_stable_across_sessions_and_verdict_kinds_differ() {
        let mut a = ProverSession::from_source(RUNNING).unwrap();
        let mut b = ProverSession::from_source(RUNNING).unwrap();
        let ra = a.prove(&ProverConfig::default());
        let rb = b.prove(&ProverConfig::default());
        assert_eq!(outcome_digest(&ra, a.ts()), outcome_digest(&rb, b.ts()));
        assert_eq!(
            certificate_digest(ra.certificate().unwrap(), a.ts()),
            certificate_digest(rb.certificate().unwrap(), b.ts()),
        );
        // An unknown outcome digests differently from a proof.
        let unknown = ProofResult {
            verdict: Verdict::Unknown,
            elapsed: Duration::ZERO,
            config_label: ra.config_label.clone(),
            stats: ProveStats::default(),
        };
        assert_ne!(outcome_digest(&unknown, a.ts()), outcome_digest(&ra, a.ts()));
        assert_eq!(hex_digest(0xabc), "0000000000000abc");
        assert_eq!(parse_hex_digest("0000000000000abc").unwrap(), 0xabc);
        assert!(parse_hex_digest("zz").is_err());
    }

    #[test]
    fn analysis_report_matches_system_shape() {
        let session = ProverSession::from_source("x := 5; while x >= 0 do x := x + 1; od").unwrap();
        let report = analysis_report(session.ts());
        assert!(report.contains("pre-analysis:"));
        assert!(report.contains("x in [5, +inf)"));
        assert!(report.contains("unreachable locations: out"));
    }
}
