//! Prover configurations (the paper's Section 6 "configurations").

use revterm_invgen::TemplateParams;
use revterm_safety::SearchBounds;
use revterm_solver::EntailmentOptions;
use std::fmt;

/// Which of the two checks of Algorithm 1 to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckKind {
    /// Check 1: find a resolution of non-determinism, an initial
    /// configuration and an inductive invariant of the restricted system
    /// that avoids `ℓ_out` (no safety prover needed).
    Check1,
    /// Check 2: find a resolution, an invariant `Ĩ` of the full system, and a
    /// backward invariant `BI` of the reversed restricted system whose
    /// complement is reachable (confirmed by the safety prover).
    Check2,
}

impl fmt::Display for CheckKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckKind::Check1 => write!(f, "Check 1"),
            CheckKind::Check2 => write!(f, "Check 2"),
        }
    }
}

/// The synthesis strategy — this reproduction's stand-in for the paper's
/// choice of SMT solver (Z3 / MathSAT5 / Barcelogic).
///
/// Both strategies are sound (results are verified exactly); they differ in
/// the candidate space they explore and therefore in coverage and speed,
/// which is precisely the role the solver axis plays in the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Full guess-and-check synthesis over the interval/octagon/guard atom
    /// pool (the workhorse; analogous to the best-performing solver).
    Houdini,
    /// A cheaper pool limited to guard-derived atoms and sample-tight
    /// interval atoms (faster, less coverage).
    GuardPropagation,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::Houdini => write!(f, "houdini"),
            Strategy::GuardPropagation => write!(f, "guard-prop"),
        }
    }
}

/// A full prover configuration: which check, which synthesis strategy, the
/// template parameters `(c, d, D)`, resolution degree and search bounds.
#[derive(Debug, Clone)]
pub struct ProverConfig {
    /// Which check to run.
    pub check: CheckKind,
    /// Synthesis strategy (the "SMT solver" axis).
    pub strategy: Strategy,
    /// Template parameters for predicate maps.
    pub params: TemplateParams,
    /// Maximal degree of the polynomials used to resolve non-determinism.
    pub resolution_degree: u32,
    /// Bounds for the explicit-state searches (initial valuations, sampling,
    /// safety queries).
    pub search: SearchBounds,
    /// Entailment budget.
    pub entailment: EntailmentOptions,
    /// Maximal number of candidate resolutions of non-determinism tried.
    pub max_resolutions: usize,
    /// Maximal number of candidate initial configurations tried per
    /// resolution (Check 1).
    pub max_initial_configs: usize,
    /// Number of interpreter steps used to classify a run as "apparently
    /// diverging" before attempting invariant synthesis.
    pub divergence_probe_steps: usize,
    /// Run the abstract-interpretation pre-analysis (`revterm_absint`) to
    /// skip probe batches whose outcome it proves.  Sound pruning only:
    /// verdicts, certificates and digests are bitwise identical with the
    /// pre-analysis off — this knob exists for differential testing and
    /// benchmarking (`--no-absint` in the CLI), and is deliberately not part
    /// of [`ProverConfig::label`].  The sibling entailment fast path is
    /// toggled separately via
    /// `EntailmentOptions::interval_fast_path`.
    pub absint: bool,
}

impl Default for ProverConfig {
    fn default() -> Self {
        ProverConfig {
            check: CheckKind::Check1,
            strategy: Strategy::Houdini,
            params: TemplateParams::new(2, 1, 1),
            resolution_degree: 1,
            search: SearchBounds::default(),
            entailment: EntailmentOptions::default(),
            max_resolutions: 24,
            max_initial_configs: 6,
            divergence_probe_steps: 120,
            absint: true,
        }
    }
}

impl ProverConfig {
    /// A configuration running the given check with default settings.
    pub fn with_check(check: CheckKind) -> ProverConfig {
        ProverConfig { check, ..ProverConfig::default() }
    }

    /// Starts building a configuration from the defaults.
    ///
    /// Preferred over struct-literal construction (`ProverConfig { .. }`):
    /// the builder keeps call sites stable as configuration fields are added.
    ///
    /// ```
    /// use revterm::{CheckKind, ProverConfig, Strategy};
    ///
    /// let config = ProverConfig::builder()
    ///     .check(CheckKind::Check2)
    ///     .strategy(Strategy::GuardPropagation)
    ///     .template(3, 1, 1)
    ///     .build();
    /// assert_eq!(config.label(), "check2/guard-prop/(c=3,d=1,D=1)");
    /// ```
    pub fn builder() -> ProverConfigBuilder {
        ProverConfigBuilder::new()
    }

    /// Human-readable label, e.g. `check1/houdini/(c=2,d=1,D=1)`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/(c={},d={},D={})",
            match self.check {
                CheckKind::Check1 => "check1",
                CheckKind::Check2 => "check2",
            },
            self.strategy,
            self.params.c,
            self.params.d,
            self.params.degree
        )
    }
}

/// Builder for [`ProverConfig`], replacing struct-literal construction as the
/// public way to assemble configurations (see [`ProverConfig::builder`]).
#[derive(Debug, Clone, Default)]
pub struct ProverConfigBuilder {
    config: ProverConfig,
}

impl ProverConfigBuilder {
    /// Starts from [`ProverConfig::default`].
    pub fn new() -> ProverConfigBuilder {
        ProverConfigBuilder { config: ProverConfig::default() }
    }

    /// Which check to run.
    pub fn check(mut self, check: CheckKind) -> Self {
        self.config.check = check;
        self
    }

    /// Synthesis strategy (the "SMT solver" axis).
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// Template parameters for predicate maps.
    pub fn params(mut self, params: TemplateParams) -> Self {
        self.config.params = params;
        self
    }

    /// Template parameters given directly as `(c, d, D)`.
    pub fn template(self, c: usize, d: usize, degree: u32) -> Self {
        self.params(TemplateParams::new(c, d, degree))
    }

    /// Maximal degree of the polynomials used to resolve non-determinism.
    pub fn resolution_degree(mut self, degree: u32) -> Self {
        self.config.resolution_degree = degree;
        self
    }

    /// Bounds for the explicit-state searches.
    pub fn search(mut self, search: SearchBounds) -> Self {
        self.config.search = search;
        self
    }

    /// Entailment budget.
    pub fn entailment(mut self, entailment: EntailmentOptions) -> Self {
        self.config.entailment = entailment;
        self
    }

    /// Maximal number of candidate resolutions of non-determinism tried.
    pub fn max_resolutions(mut self, max: usize) -> Self {
        self.config.max_resolutions = max;
        self
    }

    /// Maximal number of candidate initial configurations tried per
    /// resolution (Check 1).
    pub fn max_initial_configs(mut self, max: usize) -> Self {
        self.config.max_initial_configs = max;
        self
    }

    /// Number of interpreter steps used to classify a run as "apparently
    /// diverging".
    pub fn divergence_probe_steps(mut self, steps: usize) -> Self {
        self.config.divergence_probe_steps = steps;
        self
    }

    /// Toggles the abstract-interpretation pre-analysis *and* the interval
    /// entailment fast path together (the two halves of the `absint`
    /// machinery; see [`ProverConfig::absint`]).  Results are bitwise
    /// identical either way — `false` is for differential testing and
    /// benchmarking.
    pub fn absint(mut self, on: bool) -> Self {
        self.config.absint = on;
        self.config.entailment.interval_fast_path = on;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> ProverConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_mirrors_struct_literal_construction() {
        let built = ProverConfig::builder()
            .check(CheckKind::Check2)
            .strategy(Strategy::GuardPropagation)
            .template(3, 2, 2)
            .resolution_degree(2)
            .max_resolutions(10)
            .max_initial_configs(4)
            .divergence_probe_steps(80)
            .build();
        assert_eq!(built.check, CheckKind::Check2);
        assert_eq!(built.strategy, Strategy::GuardPropagation);
        assert_eq!(built.params, TemplateParams::new(3, 2, 2));
        assert_eq!(built.resolution_degree, 2);
        assert_eq!(built.max_resolutions, 10);
        assert_eq!(built.max_initial_configs, 4);
        assert_eq!(built.divergence_probe_steps, 80);
        // Untouched fields keep their defaults.
        let default = ProverConfig::default();
        assert_eq!(built.search, default.search);
        assert_eq!(built.entailment, default.entailment);
        assert_eq!(ProverConfigBuilder::new().build().label(), default.label());
    }

    #[test]
    fn absint_toggle_flips_both_knobs() {
        let on = ProverConfig::default();
        assert!(on.absint && on.entailment.interval_fast_path);
        let off = ProverConfig::builder().absint(false).build();
        assert!(!off.absint && !off.entailment.interval_fast_path);
        // Deliberately not part of the label: results are identical either
        // way, so the knob must not split sweep reports into new cells.
        assert_eq!(off.label(), on.label());
    }

    #[test]
    fn labels_and_defaults() {
        let c = ProverConfig::default();
        assert_eq!(c.check, CheckKind::Check1);
        assert_eq!(c.label(), "check1/houdini/(c=2,d=1,D=1)");
        let c2 = ProverConfig::with_check(CheckKind::Check2);
        assert!(c2.label().starts_with("check2/"));
        assert_eq!(CheckKind::Check1.to_string(), "Check 1");
        assert_eq!(Strategy::GuardPropagation.to_string(), "guard-prop");
    }
}
