//! Prover configurations (the paper's Section 6 "configurations").

use crate::error::Error;
use revterm_invgen::TemplateParams;
use revterm_safety::SearchBounds;
use revterm_solver::EntailmentOptions;
use std::fmt;
use std::time::Duration;

/// A cooperative per-request budget: an optional wall-clock limit and an
/// optional cap on entailment-oracle calls.
///
/// The prover checks the budget at *candidate boundaries* — between candidate
/// `(resolution, initial)` pairs and before each invariant synthesis — never
/// inside a memoized computation, so an interrupted run leaves every session
/// cache entry fully computed (an interrupted session is never poisoned; the
/// next call on it behaves exactly like a call on a fresh session with the
/// same warm caches).  When the budget expires the verdict is the structured
/// [`crate::Verdict::Timeout`], which the wire layer maps to
/// [`Error::Timeout`].
///
/// The default budget is unlimited, so existing callers are unaffected; the
/// budget is deliberately **not** part of [`ProverConfig::label`] (two runs
/// that differ only in budget are the same configuration, one of them merely
/// cut short).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    /// Wall-clock limit for one `prove` call (`None` = unlimited).  The
    /// deadline is armed when the call starts, so the same configuration
    /// value can be reused across requests.
    pub time_limit: Option<Duration>,
    /// Maximal number of entailment-oracle lookups one `prove` call may
    /// issue (`None` = unlimited).  Unlike the wall clock this cap is
    /// deterministic: the same request with the same cap times out at the
    /// same point on every machine.
    pub max_entailment_calls: Option<u64>,
}

impl Budget {
    /// The unlimited budget (the default).
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// A wall-clock-only budget.
    pub fn with_time_limit(limit: Duration) -> Budget {
        Budget { time_limit: Some(limit), max_entailment_calls: None }
    }

    /// Returns `true` iff neither limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.time_limit.is_none() && self.max_entailment_calls.is_none()
    }
}

/// Which of the two checks of Algorithm 1 to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckKind {
    /// Check 1: find a resolution of non-determinism, an initial
    /// configuration and an inductive invariant of the restricted system
    /// that avoids `ℓ_out` (no safety prover needed).
    Check1,
    /// Check 2: find a resolution, an invariant `Ĩ` of the full system, and a
    /// backward invariant `BI` of the reversed restricted system whose
    /// complement is reachable (confirmed by the safety prover).
    Check2,
}

impl fmt::Display for CheckKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckKind::Check1 => write!(f, "Check 1"),
            CheckKind::Check2 => write!(f, "Check 2"),
        }
    }
}

/// The synthesis strategy — this reproduction's stand-in for the paper's
/// choice of SMT solver (Z3 / MathSAT5 / Barcelogic).
///
/// Both strategies are sound (results are verified exactly); they differ in
/// the candidate space they explore and therefore in coverage and speed,
/// which is precisely the role the solver axis plays in the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Full guess-and-check synthesis over the interval/octagon/guard atom
    /// pool (the workhorse; analogous to the best-performing solver).
    Houdini,
    /// A cheaper pool limited to guard-derived atoms and sample-tight
    /// interval atoms (faster, less coverage).
    GuardPropagation,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::Houdini => write!(f, "houdini"),
            Strategy::GuardPropagation => write!(f, "guard-prop"),
        }
    }
}

/// A full prover configuration: which check, which synthesis strategy, the
/// template parameters `(c, d, D)`, resolution degree and search bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProverConfig {
    /// Which check to run.
    pub check: CheckKind,
    /// Synthesis strategy (the "SMT solver" axis).
    pub strategy: Strategy,
    /// Template parameters for predicate maps.
    pub params: TemplateParams,
    /// Maximal degree of the polynomials used to resolve non-determinism.
    pub resolution_degree: u32,
    /// Bounds for the explicit-state searches (initial valuations, sampling,
    /// safety queries).
    pub search: SearchBounds,
    /// Entailment budget.
    pub entailment: EntailmentOptions,
    /// Maximal number of candidate resolutions of non-determinism tried.
    pub max_resolutions: usize,
    /// Maximal number of candidate initial configurations tried per
    /// resolution (Check 1).
    pub max_initial_configs: usize,
    /// Number of interpreter steps used to classify a run as "apparently
    /// diverging" before attempting invariant synthesis.
    pub divergence_probe_steps: usize,
    /// Run the abstract-interpretation pre-analysis (`revterm_absint`) to
    /// skip probe batches whose outcome it proves.  Sound pruning only:
    /// verdicts, certificates and digests are bitwise identical with the
    /// pre-analysis off — this knob exists for differential testing and
    /// benchmarking (`--no-absint` in the CLI), and is deliberately not part
    /// of [`ProverConfig::label`].  The sibling entailment fast path is
    /// toggled separately via
    /// `EntailmentOptions::interval_fast_path`.
    pub absint: bool,
    /// Cooperative per-call budget (deadline and work cap); unlimited by
    /// default.  Like `absint`, deliberately not part of
    /// [`ProverConfig::label`]: a budget never changes *what* is computed,
    /// only how far the computation is allowed to run.
    pub budget: Budget,
}

impl Default for ProverConfig {
    fn default() -> Self {
        ProverConfig {
            check: CheckKind::Check1,
            strategy: Strategy::Houdini,
            params: TemplateParams::new(2, 1, 1),
            resolution_degree: 1,
            search: SearchBounds::default(),
            entailment: EntailmentOptions::default(),
            max_resolutions: 24,
            max_initial_configs: 6,
            divergence_probe_steps: 120,
            absint: true,
            budget: Budget::default(),
        }
    }
}

impl ProverConfig {
    /// A configuration running the given check with default settings.
    pub fn with_check(check: CheckKind) -> ProverConfig {
        ProverConfig { check, ..ProverConfig::default() }
    }

    /// Starts building a configuration from the defaults.
    ///
    /// Preferred over struct-literal construction (`ProverConfig { .. }`):
    /// the builder keeps call sites stable as configuration fields are added.
    ///
    /// ```
    /// use revterm::{CheckKind, ProverConfig, Strategy};
    ///
    /// let config = ProverConfig::builder()
    ///     .check(CheckKind::Check2)
    ///     .strategy(Strategy::GuardPropagation)
    ///     .template(3, 1, 1)
    ///     .build();
    /// assert_eq!(config.label(), "check2/guard-prop/(c=3,d=1,D=1)");
    /// ```
    pub fn builder() -> ProverConfigBuilder {
        ProverConfigBuilder::new()
    }

    /// Human-readable label, e.g. `check1/houdini/(c=2,d=1,D=1)`.
    ///
    /// The label is a stable, parseable round-trip: for any configuration
    /// whose non-labelled fields (search bounds, entailment budget, caps,
    /// `absint`, [`Budget`]) are at their defaults — which is true of every
    /// grid cell produced by [`crate::default_sweep`] —
    /// `ProverConfig::parse_label(&config.label())` reconstructs the
    /// configuration exactly.  This is how wire requests and sweep reports
    /// name configurations textually.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/(c={},d={},D={})",
            match self.check {
                CheckKind::Check1 => "check1",
                CheckKind::Check2 => "check2",
            },
            self.strategy,
            self.params.c,
            self.params.d,
            self.params.degree
        )
    }

    /// Parses a configuration label produced by [`ProverConfig::label`] back
    /// into a configuration.
    ///
    /// The label encodes the check, strategy and template parameters; every
    /// other field takes its default value.  The grammar is exactly
    /// `<check>/<strategy>/(c=<n>,d=<n>,D=<n>)` with `<check>` one of
    /// `check1` / `check2` and `<strategy>` one of `houdini` / `guard-prop`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadLabel`] naming the offending component when the
    /// label does not match the grammar.
    pub fn parse_label(label: &str) -> Result<ProverConfig, Error> {
        let bad = |what: &str| Error::BadLabel(format!("{what} in {label:?}"));
        let mut parts = label.splitn(3, '/');
        let check = match parts.next() {
            Some("check1") => CheckKind::Check1,
            Some("check2") => CheckKind::Check2,
            _ => return Err(bad("unknown check (want check1 or check2)")),
        };
        let strategy = match parts.next() {
            Some("houdini") => Strategy::Houdini,
            Some("guard-prop") => Strategy::GuardPropagation,
            _ => return Err(bad("unknown strategy (want houdini or guard-prop)")),
        };
        let params = parts.next().ok_or_else(|| bad("missing template parameters"))?;
        let inner = params
            .strip_prefix("(c=")
            .and_then(|rest| rest.strip_suffix(')'))
            .ok_or_else(|| bad("template parameters must look like (c=N,d=N,D=N)"))?;
        let mut fields = inner.splitn(3, ',');
        let c: usize =
            fields.next().and_then(|v| v.parse().ok()).ok_or_else(|| bad("bad c parameter"))?;
        let d: usize = fields
            .next()
            .and_then(|v| v.strip_prefix("d="))
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("bad d parameter"))?;
        let degree: u32 = fields
            .next()
            .and_then(|v| v.strip_prefix("D="))
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("bad D parameter"))?;
        Ok(ProverConfig::builder()
            .check(check)
            .strategy(strategy)
            .params(TemplateParams::new(c, d, degree))
            .build())
    }
}

/// Builder for [`ProverConfig`], replacing struct-literal construction as the
/// public way to assemble configurations (see [`ProverConfig::builder`]).
#[derive(Debug, Clone, Default)]
pub struct ProverConfigBuilder {
    config: ProverConfig,
}

impl ProverConfigBuilder {
    /// Starts from [`ProverConfig::default`].
    pub fn new() -> ProverConfigBuilder {
        ProverConfigBuilder { config: ProverConfig::default() }
    }

    /// Which check to run.
    pub fn check(mut self, check: CheckKind) -> Self {
        self.config.check = check;
        self
    }

    /// Synthesis strategy (the "SMT solver" axis).
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// Template parameters for predicate maps.
    pub fn params(mut self, params: TemplateParams) -> Self {
        self.config.params = params;
        self
    }

    /// Template parameters given directly as `(c, d, D)`.
    pub fn template(self, c: usize, d: usize, degree: u32) -> Self {
        self.params(TemplateParams::new(c, d, degree))
    }

    /// Maximal degree of the polynomials used to resolve non-determinism.
    pub fn resolution_degree(mut self, degree: u32) -> Self {
        self.config.resolution_degree = degree;
        self
    }

    /// Bounds for the explicit-state searches.
    pub fn search(mut self, search: SearchBounds) -> Self {
        self.config.search = search;
        self
    }

    /// Entailment budget.
    pub fn entailment(mut self, entailment: EntailmentOptions) -> Self {
        self.config.entailment = entailment;
        self
    }

    /// Maximal number of candidate resolutions of non-determinism tried.
    pub fn max_resolutions(mut self, max: usize) -> Self {
        self.config.max_resolutions = max;
        self
    }

    /// Maximal number of candidate initial configurations tried per
    /// resolution (Check 1).
    pub fn max_initial_configs(mut self, max: usize) -> Self {
        self.config.max_initial_configs = max;
        self
    }

    /// Number of interpreter steps used to classify a run as "apparently
    /// diverging".
    pub fn divergence_probe_steps(mut self, steps: usize) -> Self {
        self.config.divergence_probe_steps = steps;
        self
    }

    /// Toggles the abstract-interpretation pre-analysis *and* the interval
    /// entailment fast path together (the two halves of the `absint`
    /// machinery; see [`ProverConfig::absint`]).  Results are bitwise
    /// identical either way — `false` is for differential testing and
    /// benchmarking.
    pub fn absint(mut self, on: bool) -> Self {
        self.config.absint = on;
        self.config.entailment.interval_fast_path = on;
        self
    }

    /// Cooperative per-call budget (deadline and work cap); see [`Budget`].
    pub fn budget(mut self, budget: Budget) -> Self {
        self.config.budget = budget;
        self
    }

    /// Wall-clock limit shorthand for [`ProverConfigBuilder::budget`].
    pub fn time_limit(mut self, limit: Duration) -> Self {
        self.config.budget.time_limit = Some(limit);
        self
    }

    /// Finishes the build.
    pub fn build(self) -> ProverConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_mirrors_struct_literal_construction() {
        let built = ProverConfig::builder()
            .check(CheckKind::Check2)
            .strategy(Strategy::GuardPropagation)
            .template(3, 2, 2)
            .resolution_degree(2)
            .max_resolutions(10)
            .max_initial_configs(4)
            .divergence_probe_steps(80)
            .build();
        assert_eq!(built.check, CheckKind::Check2);
        assert_eq!(built.strategy, Strategy::GuardPropagation);
        assert_eq!(built.params, TemplateParams::new(3, 2, 2));
        assert_eq!(built.resolution_degree, 2);
        assert_eq!(built.max_resolutions, 10);
        assert_eq!(built.max_initial_configs, 4);
        assert_eq!(built.divergence_probe_steps, 80);
        // Untouched fields keep their defaults.
        let default = ProverConfig::default();
        assert_eq!(built.search, default.search);
        assert_eq!(built.entailment, default.entailment);
        assert_eq!(ProverConfigBuilder::new().build().label(), default.label());
    }

    #[test]
    fn absint_toggle_flips_both_knobs() {
        let on = ProverConfig::default();
        assert!(on.absint && on.entailment.interval_fast_path);
        let off = ProverConfig::builder().absint(false).build();
        assert!(!off.absint && !off.entailment.interval_fast_path);
        // Deliberately not part of the label: results are identical either
        // way, so the knob must not split sweep reports into new cells.
        assert_eq!(off.label(), on.label());
    }

    #[test]
    fn parse_label_round_trips_the_degree1_grid() {
        // Every grid cell uses default non-labelled fields, so the label is
        // a faithful round-trip of the whole configuration.
        for config in crate::sweep::default_sweep() {
            let parsed = ProverConfig::parse_label(&config.label())
                .unwrap_or_else(|e| panic!("label {:?} failed to parse: {e}", config.label()));
            assert_eq!(parsed, config, "round-trip mismatch for {:?}", config.label());
            assert_eq!(parsed.label(), config.label());
        }
    }

    #[test]
    fn parse_label_rejects_malformed_labels() {
        for bad in [
            "",
            "check3/houdini/(c=1,d=1,D=1)",
            "check1/z3/(c=1,d=1,D=1)",
            "check1/houdini",
            "check1/houdini/(c=1,d=1)",
            "check1/houdini/(c=x,d=1,D=1)",
            "check1/houdini/(c=1,d=1,D=1",
            "check1/houdini/c=1,d=1,D=1",
        ] {
            let err = ProverConfig::parse_label(bad).expect_err(bad);
            assert!(matches!(err, crate::Error::BadLabel(_)), "{bad}: {err}");
            // The message names the offending label for diagnosability.
            assert!(err.to_string().contains(bad) || !bad.is_empty());
        }
    }

    #[test]
    fn budget_defaults_to_unlimited_and_stays_out_of_the_label() {
        let config = ProverConfig::default();
        assert!(config.budget.is_unlimited());
        let limited =
            ProverConfig::builder().time_limit(std::time::Duration::from_millis(5)).build();
        assert!(!limited.budget.is_unlimited());
        assert_eq!(limited.label(), config.label());
        let capped = ProverConfig::builder()
            .budget(Budget { max_entailment_calls: Some(100), ..Budget::unlimited() })
            .build();
        assert_eq!(capped.budget.max_entailment_calls, Some(100));
        assert_eq!(
            Budget::with_time_limit(std::time::Duration::from_secs(1)).time_limit,
            Some(std::time::Duration::from_secs(1))
        );
    }

    #[test]
    fn labels_and_defaults() {
        let c = ProverConfig::default();
        assert_eq!(c.check, CheckKind::Check1);
        assert_eq!(c.label(), "check1/houdini/(c=2,d=1,D=1)");
        let c2 = ProverConfig::with_check(CheckKind::Check2);
        assert!(c2.label().starts_with("check2/"));
        assert_eq!(CheckKind::Check1.to_string(), "Check 1");
        assert_eq!(Strategy::GuardPropagation.to_string(), "guard-prop");
    }
}
