//! The session-centric prover API.
//!
//! The paper's evaluation protocol (Section 6) runs *every* configuration of
//! the check × strategy × template grid on each benchmark.  Most of the work
//! a single [`crate::prove`] call performs depends only on the transition
//! system (or on a small projection of the configuration), not on the full
//! configuration: candidate resolutions, initial valuations, restricted and
//! reversed systems, divergence-probe interpreter traces, reachable sample
//! sets, candidate atom pools and — dominating everything — the exact
//! Farkas/Handelman entailment queries.  A [`ProverSession`] owns one
//! transition system together with memo tables for all of those artifacts, so
//! a configuration sweep pays for each artifact once instead of once per
//! configuration.
//!
//! Every cache is a pure memo table: a sessioned run returns *bitwise
//! identical* verdicts and certificates to fresh per-configuration runs, only
//! faster.  Certificate validation is deliberately **not** routed through the
//! session caches — a `NonTerminating` verdict is still re-checked by the
//! independent, uncached oracle.

use crate::config::ProverConfig;
use crate::prover::{prove_cached, ProofResult};
use crate::sweep::{ConfigOutcome, SweepReport};
use revterm_invgen::{PoolCache, SampleSet};
use revterm_lang::Program;
use revterm_safety::SearchBounds;
use revterm_solver::{BasisCache, EntailmentCache, LpStats};
use revterm_ts::interp::{Config, Valuation};
use revterm_ts::{lower, Assertion, PredicateMap, Resolution, TransitionSystem};
use std::collections::HashMap;

/// The label reported by [`ProverSession::prove_first`] (and the
/// [`crate::prove_with_configs`] wrapper) when called with an **empty**
/// configuration slice: no configuration ran, so the outcome is `Unknown`
/// by definition, with this sentinel label instead of a configuration label.
pub const NO_CONFIGS_LABEL: &str = "no-configs";

/// Structured per-stage statistics of one `prove` call.
///
/// Counters are deltas for the single call, not session totals (see
/// [`SessionStats`] for the running aggregate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProveStats {
    /// Candidates examined: `(resolution, initial configuration)` pairs for
    /// Check 1, candidate resolutions for Check 2.
    pub candidates_tried: usize,
    /// Invariant-synthesis (Houdini) invocations.
    pub synthesis_calls: usize,
    /// Entailment-oracle queries routed through the session memo (including
    /// ones answered from it; certificate validation is deliberately
    /// uncached and not counted here).
    pub entailment_calls: u64,
    /// Entailment queries answered from the session memo table.
    pub entailment_cache_hits: u64,
    /// Divergence-probe / backward-probe interpreter runs served from cache.
    pub probe_cache_hits: u64,
    /// Interpreter probe computations that had to run.
    pub probe_cache_misses: u64,
    /// Derived artifacts (resolution lists, initial valuations, restricted
    /// and reversed systems, reachable samples, `Ĩ`/`Θ`) served from cache.
    pub artifact_cache_hits: u64,
    /// Derived artifacts that had to be computed.
    pub artifact_cache_misses: u64,
    /// Probe batches skipped because the abstract-interpretation
    /// pre-analysis proved their outcome (Check 2 backward probes whose
    /// terminal location is provably unreachable).  The memoized result is
    /// bitwise identical to what the probes would have produced.
    pub absint_prunes: u64,
    /// LP engine counters (solves, pivots, warm-start hits) for the queries
    /// this call routed through the session's basis cache.
    pub lp: LpStats,
}

impl ProveStats {
    /// Adds another call's counters into this one.
    pub fn accumulate(&mut self, other: &ProveStats) {
        self.candidates_tried += other.candidates_tried;
        self.synthesis_calls += other.synthesis_calls;
        self.entailment_calls += other.entailment_calls;
        self.entailment_cache_hits += other.entailment_cache_hits;
        self.probe_cache_hits += other.probe_cache_hits;
        self.probe_cache_misses += other.probe_cache_misses;
        self.artifact_cache_hits += other.artifact_cache_hits;
        self.artifact_cache_misses += other.artifact_cache_misses;
        self.absint_prunes += other.absint_prunes;
        self.lp.accumulate(&other.lp);
    }

    /// Total cache hits across all memo layers.
    pub fn total_cache_hits(&self) -> u64 {
        self.entailment_cache_hits + self.probe_cache_hits + self.artifact_cache_hits
    }
}

/// Aggregate statistics of a [`ProverSession`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionStats {
    /// Number of `prove` calls answered by the session.
    pub proves: usize,
    /// Counter totals across all calls.
    pub aggregate: ProveStats,
}

/// Memo key for a synthesized invariant: every input that determines the
/// Houdini result besides the transition system and the sample set (which
/// are fixed by the cache the key lives in): the effective template
/// parameters and the entailment budget.  `require_initiation`,
/// `forced_false` and `max_iterations` are constant per call site.
pub(crate) type SynthKey = (revterm_invgen::TemplateParams, revterm_solver::EntailmentOptions);

/// A reversed restricted system `T^{r,Θ}_{R_NA}` with its atom-pool cache
/// and memoized backward invariants.
pub(crate) struct ReversedEntry {
    pub system: TransitionSystem,
    pub pool: PoolCache,
    /// Check 2 backward invariants `BI` keyed by the backward-sample inputs
    /// plus the synthesis inputs.
    pub invariants: HashMap<((SearchBounds, usize), SynthKey), PredicateMap>,
}

/// A restricted system `T_{R_NA}` plus everything memoized per resolution.
pub(crate) struct RestrictedEntry {
    pub system: TransitionSystem,
    pub pool: PoolCache,
    /// Check 1 divergence probes: `(initial valuation, probe steps)` → trace.
    pub probes: HashMap<(Valuation, usize), Vec<Config>>,
    /// Check 1 invariants keyed by the probe that seeded the samples plus
    /// the synthesis inputs.
    pub invariants: HashMap<((Valuation, usize), SynthKey), PredicateMap>,
    /// Check 2 backward samples: `(search bounds, probe steps)` →
    /// `(any probe reached ℓ_out, samples on terminating probes)`.
    pub backward: HashMap<(SearchBounds, usize), (bool, SampleSet)>,
    /// Reversed systems keyed by `Θ` (few distinct values; linear scan).
    pub reversed: Vec<(Assertion, ReversedEntry)>,
}

impl RestrictedEntry {
    pub(crate) fn new(system: TransitionSystem) -> RestrictedEntry {
        RestrictedEntry {
            system,
            pool: PoolCache::new(),
            probes: HashMap::new(),
            invariants: HashMap::new(),
            backward: HashMap::new(),
            reversed: Vec::new(),
        }
    }
}

/// Looks `key` up in `map`, computing and inserting the value on a miss,
/// while bumping the given hit/miss counters — the shared shape of every
/// per-session memo table.  Taking the counters as plain `&mut u64` (rather
/// than `&mut ProveStats`) lets `compute` closures update *other* stats
/// fields concurrently via disjoint field borrows.
pub(crate) fn memo<'m, K: Eq + std::hash::Hash, V>(
    map: &'m mut HashMap<K, V>,
    key: K,
    hits: &mut u64,
    misses: &mut u64,
    compute: impl FnOnce() -> V,
) -> &'m mut V {
    match map.entry(key) {
        std::collections::hash_map::Entry::Occupied(e) => {
            *hits += 1;
            e.into_mut()
        }
        std::collections::hash_map::Entry::Vacant(v) => {
            *misses += 1;
            v.insert(compute())
        }
    }
}

/// The reversed system for `theta` in a [`RestrictedEntry`]'s `reversed`
/// list, building and caching it on first use.  Returns the entry together
/// with a hit flag.  Takes the fields separately (rather than `&mut
/// RestrictedEntry`) so callers can keep disjoint borrows of the entry's
/// other caches alive.
pub(crate) fn reversed_entry_for<'a>(
    reversed: &'a mut Vec<(Assertion, ReversedEntry)>,
    restricted_system: &TransitionSystem,
    theta: &Assertion,
) -> (&'a mut ReversedEntry, bool) {
    // Indexed (not iterator-based) lookup to satisfy the borrow checker.
    let pos = reversed.iter().position(|(t, _)| t == theta);
    match pos {
        Some(i) => (&mut reversed[i].1, true),
        None => {
            let entry = ReversedEntry {
                system: restricted_system.reverse(theta.clone()),
                pool: PoolCache::new(),
                invariants: HashMap::new(),
            };
            reversed.push((theta.clone(), entry));
            (&mut reversed.last_mut().expect("just pushed").1, false)
        }
    }
}

/// All memo tables of a session.  `Default` gives the empty caches used by
/// the one-shot free-function wrappers.
#[derive(Default)]
pub(crate) struct Caches {
    /// Global entailment memo (keyed purely on polynomials, so it is shared
    /// across the base, restricted and reversed systems).
    pub entail: EntailmentCache,
    /// Optimal-basis memo for the revised simplex, keyed on the structural
    /// shape of each entailment LP so that repeated Houdini queries warm-start
    /// instead of re-running phase 1 (see `revterm_solver::lp`).
    pub lp_basis: BasisCache,
    /// Atom-pool artifacts of the base system (Check 2's `Ĩ` synthesis).
    pub base_pool: PoolCache,
    /// Candidate resolutions keyed by `(grid, resolution degree, cap)`.
    pub resolutions: HashMap<(i64, u32, usize), Vec<Resolution>>,
    /// Preferred initial valuations keyed by `(search bounds, cap)`.
    pub initials: HashMap<(SearchBounds, usize), Vec<Valuation>>,
    /// Concretely reachable configurations keyed by search bounds.
    pub forward_samples: HashMap<SearchBounds, Vec<Config>>,
    /// Check 2's `(Ĩ, Θ)` keyed by the synthesis inputs that determine them.
    #[allow(clippy::type_complexity)]
    pub tilde: HashMap<
        (revterm_invgen::TemplateParams, revterm_solver::EntailmentOptions, SearchBounds),
        (PredicateMap, Assertion),
    >,
    /// Restricted systems and their per-resolution artifacts.
    pub restricted: HashMap<Resolution, RestrictedEntry>,
    /// The interval/sign pre-analysis of the base system, computed on first
    /// use (see [`ProverSession::abstract_state`]).
    pub absint: Option<revterm_absint::AbstractState>,
}

impl Caches {
    /// The candidate resolutions for `config`, memoized.
    pub(crate) fn resolutions_for(
        &mut self,
        ts: &TransitionSystem,
        config: &ProverConfig,
        stats: &mut ProveStats,
    ) -> Vec<Resolution> {
        let key = (config.search.grid, config.resolution_degree, config.max_resolutions);
        memo(
            &mut self.resolutions,
            key,
            &mut stats.artifact_cache_hits,
            &mut stats.artifact_cache_misses,
            || crate::check1::candidate_resolutions(ts, config),
        )
        .clone()
    }

    /// The preferred initial valuations for `config`, memoized.
    pub(crate) fn initials_for(
        &mut self,
        ts: &TransitionSystem,
        config: &ProverConfig,
        stats: &mut ProveStats,
    ) -> Vec<Valuation> {
        let key = (config.search.clone(), config.max_initial_configs);
        memo(
            &mut self.initials,
            key,
            &mut stats.artifact_cache_hits,
            &mut stats.artifact_cache_misses,
            || crate::check1::preferred_initials(ts, config),
        )
        .clone()
    }
}

/// A prover session: one [`TransitionSystem`] plus memoized derived artifacts
/// shared by every `prove` call on it.
///
/// This is the primary entry point of the crate.  Open a session once per
/// program, then run as many configurations against it as needed — a sweep
/// over the paper's configuration grid typically runs several times faster
/// than fresh per-configuration [`crate::prove`] calls, with identical
/// results (see the module docs for why the caches cannot change verdicts).
///
/// ```
/// use revterm::{ProverSession, ProverConfig, quick_sweep};
/// use revterm_lang::parse_program;
///
/// let program = parse_program("while x >= 0 do x := x + 1; od").unwrap();
/// let mut session = ProverSession::from_program(&program).unwrap();
/// let report = session.sweep(&quick_sweep(), 1);
/// assert!(report.proved());
/// ```
pub struct ProverSession {
    ts: TransitionSystem,
    caches: Caches,
    stats: SessionStats,
}

/// Clamps a configuration's budget to the time remaining until `deadline`
/// (identity when `deadline` is `None`).  The budget is excluded from
/// [`ProverConfig::label`] and from every cache key, so clamping changes
/// *when* a run is cut short but never *what* any completed run computes.
fn clamp_to_deadline(config: &ProverConfig, deadline: Option<std::time::Instant>) -> ProverConfig {
    let Some(deadline) = deadline else { return config.clone() };
    let remaining = deadline.saturating_duration_since(std::time::Instant::now());
    let mut clamped = config.clone();
    clamped.budget.time_limit = Some(match clamped.budget.time_limit {
        Some(own) => own.min(remaining),
        None => remaining,
    });
    clamped
}

impl ProverSession {
    /// Opens a session on a transition system.
    pub fn new(ts: TransitionSystem) -> ProverSession {
        ProverSession { ts, caches: Caches::default(), stats: SessionStats::default() }
    }

    /// Opens a session by lowering a program.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::Analysis`] if the program cannot be
    /// translated.
    pub fn from_program(program: &Program) -> Result<ProverSession, crate::Error> {
        let ts = lower(program).map_err(|e| crate::Error::Analysis(e.to_string()))?;
        Ok(ProverSession::new(ts))
    }

    /// Opens a session straight from program text (parse + analyse + lower).
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::Parse`] for lexical/syntactic/semantic
    /// problems in the text and [`crate::Error::Analysis`] for lowering
    /// failures — the same split the CLI exit codes and the wire protocol
    /// report.
    pub fn from_source(source: &str) -> Result<ProverSession, crate::Error> {
        let program = revterm_lang::parse_program(source).map_err(crate::Error::Parse)?;
        ProverSession::from_program(&program)
    }

    /// The transition system this session proves facts about.
    pub fn ts(&self) -> &TransitionSystem {
        &self.ts
    }

    /// Running counter totals across every `prove` call of this session.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// The interval/sign abstract interpretation of this session's system,
    /// computed on first call and cached for the session's lifetime (the
    /// system is immutable, so the fixpoint never needs recomputing).
    ///
    /// This is the session-level entry point to the pre-analysis facts —
    /// per-location envelopes, reachability, constancy — that the
    /// `revterm analyze` subcommand renders; the prover itself consults the
    /// same machinery internally for sound pruning only.
    pub fn abstract_state(&mut self) -> &revterm_absint::AbstractState {
        self.caches.absint.get_or_insert_with(|| revterm_absint::analyze(&self.ts))
    }

    /// Statistics of the monomial interning pool, surfaced next to the
    /// session's memo-table counters.
    ///
    /// Monomials that do not fit the packed single-word tier are interned in
    /// a pool of stable ids (see [`revterm_poly::mono_pool_stats`]).  The
    /// pool is process-global rather than session-owned — interned entries
    /// are immutable and shared by every polynomial in the process, so
    /// scoping them per session would only duplicate entries — but sessions
    /// are the natural place to *read* it: on the paper's degree-1/2
    /// templates this count staying at zero is how the "everything stayed on
    /// the allocation-free packed path" claim is checked.
    pub fn mono_pool_stats(&self) -> revterm_poly::MonoPoolStats {
        revterm_poly::mono_pool_stats()
    }

    /// Proves non-termination with a single configuration, reusing every
    /// artifact previous calls on this session have already computed.
    ///
    /// Behaves exactly like the free function [`crate::prove`] (including
    /// the independent certificate re-validation), except faster when the
    /// session is warm.  The returned [`ProofResult::stats`] describe this
    /// call's work and cache effectiveness.
    pub fn prove(&mut self, config: &ProverConfig) -> ProofResult {
        let result = prove_cached(&self.ts, config, &mut self.caches);
        self.stats.proves += 1;
        self.stats.aggregate.accumulate(&result.stats);
        result
    }

    /// Tries configurations in order, returning the first success.
    ///
    /// The sessioned equivalent of [`crate::prove_with_configs`].  If no
    /// configuration succeeds the verdict is `Unknown` with the label of the
    /// **empty** sweep documented on [`NO_CONFIGS_LABEL`] when `configs` is
    /// empty, or `"none"` when configurations ran but all failed.  If no
    /// configuration succeeds but at least one was cut short by its
    /// [`crate::Budget`], the verdict is [`crate::Verdict::Timeout`] (the
    /// search was not exhausted, so `Unknown` would overclaim).
    pub fn prove_first(&mut self, configs: &[ProverConfig]) -> ProofResult {
        self.prove_first_with_deadline(configs, None)
    }

    /// [`ProverSession::prove_first`] under a whole-request deadline.
    ///
    /// Before each configuration runs, its [`crate::Budget`] time limit is
    /// clamped to the time remaining until `deadline`; configurations whose
    /// turn comes at or after the deadline are not run at all and the result
    /// is a structured [`crate::Verdict::Timeout`] (an already-expired
    /// deadline therefore *always* yields `Timeout`, never a verdict
    /// computed on zero allotted time).  With `deadline: None` this is *exactly*
    /// [`ProverSession::prove_first`] — the `revterm-serve` daemon routes
    /// every prove request through here, which is what makes daemon verdicts
    /// bitwise-identical to in-process ones when no deadline is given.
    pub fn prove_first_with_deadline(
        &mut self,
        configs: &[ProverConfig],
        deadline: Option<std::time::Instant>,
    ) -> ProofResult {
        let start = std::time::Instant::now();
        let mut stats = ProveStats::default();
        let mut any_timeout = false;
        for config in configs {
            // A configuration whose turn comes at or after the deadline is
            // not run at all: even "no real work" has unpolled setup phases
            // that could legitimately conclude `Unknown`, and reporting
            // `Unknown` for a search that was never given time overclaims.
            if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
                any_timeout = true;
                break;
            }
            let result = self.prove(&clamp_to_deadline(config, deadline));
            stats.accumulate(&result.stats);
            any_timeout |= result.timed_out();
            if result.is_non_terminating() {
                return ProofResult { elapsed: start.elapsed(), stats, ..result };
            }
        }
        ProofResult {
            verdict: if any_timeout {
                crate::prover::Verdict::Timeout
            } else {
                crate::prover::Verdict::Unknown
            },
            elapsed: start.elapsed(),
            config_label: if configs.is_empty() {
                NO_CONFIGS_LABEL.to_string()
            } else {
                "none".to_string()
            },
            stats,
        }
    }

    /// Runs a configuration sweep (the paper's Section 6 protocol), stopping
    /// early once `stop_after_success` successful configurations have been
    /// observed (pass `usize::MAX` to run the full grid).
    ///
    /// The sessioned equivalent of [`crate::sweep`]: per-configuration
    /// verdicts are identical to fresh runs, but shared artifacts are
    /// computed once across the whole grid.
    pub fn sweep(&mut self, configs: &[ProverConfig], stop_after_success: usize) -> SweepReport {
        self.sweep_with_deadline(configs, stop_after_success, None)
    }

    /// [`ProverSession::sweep`] under a whole-request deadline (see
    /// [`ProverSession::prove_first_with_deadline`] for the clamping rule).
    /// Configurations whose turn comes after the deadline are recorded with
    /// [`ConfigOutcome::timed_out`] set rather than silently dropped, so a
    /// cut-short sweep is distinguishable from an exhausted one.
    pub fn sweep_with_deadline(
        &mut self,
        configs: &[ProverConfig],
        stop_after_success: usize,
        deadline: Option<std::time::Instant>,
    ) -> SweepReport {
        let mut report = SweepReport::default();
        let mut successes = 0usize;
        for config in configs {
            // Same rule as `prove_first_with_deadline`: past the deadline a
            // configuration is recorded as timed out, not actually run.
            if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
                report.outcomes.push(ConfigOutcome {
                    label: config.label(),
                    check: config.check,
                    strategy: config.strategy,
                    params: config.params,
                    proved: false,
                    timed_out: true,
                    elapsed: std::time::Duration::ZERO,
                    stats: ProveStats::default(),
                });
                continue;
            }
            let result = self.prove(&clamp_to_deadline(config, deadline));
            let proved = result.is_non_terminating();
            report.outcomes.push(ConfigOutcome {
                label: config.label(),
                check: config.check,
                strategy: config.strategy,
                params: config.params,
                proved,
                timed_out: result.timed_out(),
                elapsed: result.elapsed,
                stats: result.stats,
            });
            if proved {
                successes += 1;
                if successes >= stop_after_success {
                    break;
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CheckKind;
    use crate::sweep::quick_sweep;
    use revterm_lang::parse_program;

    const RUNNING: &str =
        "while x >= 9 do x := ndet(); y := 10 * x; while x <= y do x := x + 1; od od";

    #[test]
    fn session_matches_free_function_on_running_example() {
        let ts = revterm_ts::lower(&parse_program(RUNNING).unwrap()).unwrap();
        let mut session = ProverSession::new(ts.clone());
        for config in quick_sweep() {
            let fresh = crate::prover::prove(&ts, &config);
            let sessioned = session.prove(&config);
            assert_eq!(fresh.is_non_terminating(), sessioned.is_non_terminating());
            assert_eq!(fresh.config_label, sessioned.config_label);
            match (fresh.certificate(), sessioned.certificate()) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.check_kind(), b.check_kind());
                    assert_eq!(a.resolution(), b.resolution());
                }
                (None, None) => {}
                _ => panic!("fresh and sessioned certificates disagree"),
            }
        }
        assert_eq!(session.stats().proves, quick_sweep().len());
    }

    #[test]
    fn second_config_hits_the_session_caches() {
        let ts = revterm_ts::lower(&parse_program(RUNNING).unwrap()).unwrap();
        let mut session = ProverSession::new(ts);
        let first = session.prove(&ProverConfig::default());
        let warm = session.prove(&ProverConfig::builder().template(3, 1, 1).build());
        assert!(first.is_non_terminating());
        assert!(warm.is_non_terminating());
        // The first call on a cold session cannot hit the per-session
        // artifact caches; the second call must.
        assert_eq!(first.stats.artifact_cache_hits, 0);
        assert!(warm.stats.artifact_cache_hits > 0, "warm stats: {:?}", warm.stats);
        assert!(warm.stats.probe_cache_hits > 0, "warm stats: {:?}", warm.stats);
        assert!(warm.stats.entailment_cache_hits > 0, "warm stats: {:?}", warm.stats);
        // Session totals aggregate both calls.
        let agg = session.stats().aggregate;
        assert_eq!(
            agg.entailment_calls,
            first.stats.entailment_calls + warm.stats.entailment_calls
        );
        assert!(agg.total_cache_hits() >= warm.stats.total_cache_hits());
    }

    #[test]
    fn prove_first_on_empty_slice_reports_the_documented_label() {
        let ts = revterm_ts::lower(&parse_program("while true do skip; od").unwrap()).unwrap();
        let mut session = ProverSession::new(ts);
        let result = session.prove_first(&[]);
        assert!(!result.is_non_terminating());
        assert_eq!(result.config_label, NO_CONFIGS_LABEL);
        assert_eq!(result.stats, ProveStats::default());
        // A non-empty slice that fails everywhere keeps the legacy label.
        let ts2 =
            revterm_ts::lower(&parse_program("n := 0; while n <= 3 do n := n + 1; od").unwrap())
                .unwrap();
        let mut session2 = ProverSession::new(ts2);
        let failed = session2.prove_first(&[ProverConfig::default()]);
        assert!(!failed.is_non_terminating());
        assert_eq!(failed.config_label, "none");
    }

    #[test]
    fn zero_deadline_yields_timeout_and_never_poisons_the_session() {
        let mut session = ProverSession::from_source(RUNNING).unwrap();
        let strict = ProverConfig::builder().time_limit(std::time::Duration::ZERO).build();
        let cut = session.prove(&strict);
        assert!(matches!(cut.verdict, crate::Verdict::Timeout));
        assert!(cut.timed_out());
        assert!(!cut.is_non_terminating());
        assert!(cut.certificate().is_none());
        // The interrupted run must not have planted partial results: the
        // same session still reaches the same verdict as a fresh one.
        let after = session.prove(&ProverConfig::default());
        let fresh = ProverSession::from_source(RUNNING).unwrap().prove(&ProverConfig::default());
        assert!(after.is_non_terminating());
        assert_eq!(
            crate::api::outcome_digest(&after, session.ts()),
            crate::api::outcome_digest(&fresh, session.ts()),
        );
        // prove_first reports Timeout only when nothing succeeded.
        let first = session.prove_first(&[strict.clone(), ProverConfig::default()]);
        assert!(first.is_non_terminating());
        let mut cold = ProverSession::from_source(RUNNING).unwrap();
        let all_cut = cold.prove_first(&[strict]);
        assert!(matches!(all_cut.verdict, crate::Verdict::Timeout));
    }

    #[test]
    fn entailment_call_budget_is_a_deterministic_work_cap() {
        // A zero-call work cap trips the first candidate boundary (the cap
        // is cooperative, so unlike the wall clock it is exactly
        // reproducible: the same request cuts at the same candidate on every
        // machine).
        let mut session = ProverSession::from_source(RUNNING).unwrap();
        let mut capped = ProverConfig::default();
        capped.budget.max_entailment_calls = Some(0);
        let cut = session.prove(&capped);
        assert!(matches!(cut.verdict, crate::Verdict::Timeout), "verdict: {:?}", cut.verdict);
        // A generous cap does not change the verdict of a provable program.
        let mut roomy = ProverConfig::default();
        roomy.budget.max_entailment_calls = Some(u64::MAX);
        let ok = session.prove(&roomy);
        assert!(ok.is_non_terminating());
        // Sweeps record per-configuration timeouts.
        let report = session.sweep(std::slice::from_ref(&capped), usize::MAX);
        assert!(report.outcomes[0].timed_out);
        assert!(!report.outcomes[0].proved);
    }

    #[test]
    fn session_sweep_stops_after_success_like_the_free_sweep() {
        let ts =
            revterm_ts::lower(&parse_program("while x >= 0 do x := x + 1; od").unwrap()).unwrap();
        let mut session = ProverSession::new(ts);
        let report = session.sweep(&quick_sweep(), 1);
        assert!(report.proved());
        assert_eq!(report.outcomes.len(), 1, "stop_after_success must cut the grid short");
        assert_eq!(report.outcomes[0].check, CheckKind::Check1);
    }
}
