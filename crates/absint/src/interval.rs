//! Closed rational intervals with optional infinite endpoints.
//!
//! [`Interval`] is the value domain shared by the premise closure
//! ([`crate::closure`]) and the per-location abstract interpreter
//! ([`crate::analysis`]).  An interval is always **nonempty**; emptiness
//! (unreachability / contradiction) is represented by the callers, so every
//! operation here either returns another nonempty interval or an `Option`
//! when the result may be empty ([`Interval::meet`], [`Interval::new`]).

use revterm_num::Rat;
use std::fmt;

/// A sign/constancy fact derived from an [`Interval`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SignFact {
    /// Strictly negative everywhere.
    Neg,
    /// At most zero.
    NonPos,
    /// Exactly zero (the constant `0`).
    Zero,
    /// At least zero.
    NonNeg,
    /// Strictly positive everywhere.
    Pos,
    /// No sign information.
    Unknown,
}

impl fmt::Display for SignFact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SignFact::Neg => "-",
            SignFact::NonPos => "<=0",
            SignFact::Zero => "0",
            SignFact::NonNeg => ">=0",
            SignFact::Pos => "+",
            SignFact::Unknown => "?",
        };
        f.write_str(s)
    }
}

/// A nonempty closed interval `[lo, hi]` over the rationals.
///
/// A `None` bound means the interval is unbounded on that side (−∞ / +∞).
/// The invariant `lo <= hi` holds whenever both bounds are finite.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Interval {
    lo: Option<Rat>,
    hi: Option<Rat>,
}

/// Extended rational used internally for endpoint arithmetic.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Ext {
    NegInf,
    Fin(Rat),
    PosInf,
}

impl Ext {
    fn from_lo(b: &Option<Rat>) -> Ext {
        b.as_ref().map_or(Ext::NegInf, |r| Ext::Fin(r.clone()))
    }

    fn from_hi(b: &Option<Rat>) -> Ext {
        b.as_ref().map_or(Ext::PosInf, |r| Ext::Fin(r.clone()))
    }

    fn into_lo(self) -> Option<Rat> {
        match self {
            Ext::Fin(r) => Some(r),
            _ => None,
        }
    }

    fn into_hi(self) -> Option<Rat> {
        match self {
            Ext::Fin(r) => Some(r),
            _ => None,
        }
    }

    /// Extended multiplication with the standard interval-arithmetic
    /// convention `0 · ±∞ = 0` (sound for closed interval endpoints).
    fn mul(&self, other: &Ext) -> Ext {
        match (self, other) {
            (Ext::Fin(a), Ext::Fin(b)) => Ext::Fin(a * b),
            (Ext::Fin(a), inf) | (inf, Ext::Fin(a)) => {
                if a.is_zero() {
                    Ext::Fin(Rat::zero())
                } else if a.is_positive() == (*inf == Ext::PosInf) {
                    Ext::PosInf
                } else {
                    Ext::NegInf
                }
            }
            (Ext::PosInf, Ext::PosInf) | (Ext::NegInf, Ext::NegInf) => Ext::PosInf,
            _ => Ext::NegInf,
        }
    }
}

impl Interval {
    /// The unconstrained interval `(-∞, +∞)`.
    pub fn top() -> Interval {
        Interval { lo: None, hi: None }
    }

    /// The singleton interval `[v, v]`.
    pub fn point(v: Rat) -> Interval {
        Interval { lo: Some(v.clone()), hi: Some(v) }
    }

    /// `[lo, +∞)` when `hi` is `None`, `(-∞, hi]` when `lo` is `None`, etc.
    ///
    /// Returns `None` when both bounds are finite and `lo > hi` (the empty
    /// interval, which this type does not represent).
    pub fn new(lo: Option<Rat>, hi: Option<Rat>) -> Option<Interval> {
        if let (Some(l), Some(h)) = (&lo, &hi) {
            if l > h {
                return None;
            }
        }
        Some(Interval { lo, hi })
    }

    /// Lower bound; `None` means −∞.
    pub fn lo(&self) -> Option<&Rat> {
        self.lo.as_ref()
    }

    /// Upper bound; `None` means +∞.
    pub fn hi(&self) -> Option<&Rat> {
        self.hi.as_ref()
    }

    /// Is this the unconstrained interval?
    pub fn is_top(&self) -> bool {
        self.lo.is_none() && self.hi.is_none()
    }

    /// The single value of a point interval, if this is one.
    pub fn as_constant(&self) -> Option<&Rat> {
        match (&self.lo, &self.hi) {
            (Some(l), Some(h)) if l == h => Some(l),
            _ => None,
        }
    }

    /// Does the interval contain `v`?
    pub fn contains(&self, v: &Rat) -> bool {
        self.lo.as_ref().is_none_or(|l| l <= v) && self.hi.as_ref().is_none_or(|h| v <= h)
    }

    /// The sign/constancy fact this interval proves.
    pub fn sign(&self) -> SignFact {
        if let Some(c) = self.as_constant() {
            if c.is_zero() {
                return SignFact::Zero;
            }
        }
        match (&self.lo, &self.hi) {
            (Some(l), _) if l.is_positive() => SignFact::Pos,
            (Some(l), _) if !l.is_negative() => SignFact::NonNeg,
            (_, Some(h)) if h.is_negative() => SignFact::Neg,
            (_, Some(h)) if !h.is_positive() => SignFact::NonPos,
            _ => SignFact::Unknown,
        }
    }

    /// Least upper bound (interval hull).
    pub fn join(&self, other: &Interval) -> Interval {
        let lo = match (&self.lo, &other.lo) {
            (Some(a), Some(b)) => Some(if a <= b { a.clone() } else { b.clone() }),
            _ => None,
        };
        let hi = match (&self.hi, &other.hi) {
            (Some(a), Some(b)) => Some(if a >= b { a.clone() } else { b.clone() }),
            _ => None,
        };
        Interval { lo, hi }
    }

    /// Greatest lower bound; `None` when the intersection is empty.
    pub fn meet(&self, other: &Interval) -> Option<Interval> {
        let lo = match (&self.lo, &other.lo) {
            (Some(a), Some(b)) => Some(if a >= b { a.clone() } else { b.clone() }),
            (Some(a), None) | (None, Some(a)) => Some(a.clone()),
            (None, None) => None,
        };
        let hi = match (&self.hi, &other.hi) {
            (Some(a), Some(b)) => Some(if a <= b { a.clone() } else { b.clone() }),
            (Some(a), None) | (None, Some(a)) => Some(a.clone()),
            (None, None) => None,
        };
        Interval::new(lo, hi)
    }

    /// Standard interval widening: any bound that moved since `self` jumps
    /// straight to the corresponding infinity.  `newer` must be `⊒ self`
    /// (callers pass the join of the old and incoming values).
    pub fn widen(&self, newer: &Interval) -> Interval {
        let lo = match (&self.lo, &newer.lo) {
            (Some(old), Some(new)) if new >= old => Some(old.clone()),
            _ => None,
        };
        let hi = match (&self.hi, &newer.hi) {
            (Some(old), Some(new)) if new <= old => Some(old.clone()),
            _ => None,
        };
        Interval { lo, hi }
    }

    /// Interval addition.
    pub fn add(&self, other: &Interval) -> Interval {
        let add_opt = |a: &Option<Rat>, b: &Option<Rat>| match (a, b) {
            (Some(a), Some(b)) => Some(a + b),
            _ => None,
        };
        Interval { lo: add_opt(&self.lo, &other.lo), hi: add_opt(&self.hi, &other.hi) }
    }

    /// Negation `[-hi, -lo]`.
    pub fn neg(&self) -> Interval {
        Interval { lo: self.hi.as_ref().map(|h| -h), hi: self.lo.as_ref().map(|l| -l) }
    }

    /// Exact scaling by a rational constant.
    pub fn scale(&self, c: &Rat) -> Interval {
        if c.is_zero() {
            return Interval::point(Rat::zero());
        }
        let lo = self.lo.as_ref().map(|l| l * c);
        let hi = self.hi.as_ref().map(|h| h * c);
        if c.is_positive() {
            Interval { lo, hi }
        } else {
            Interval { lo: hi, hi: lo }
        }
    }

    /// Interval multiplication.
    pub fn mul(&self, other: &Interval) -> Interval {
        if let Some(c) = self.as_constant() {
            return other.scale(c);
        }
        if let Some(c) = other.as_constant() {
            return self.scale(c);
        }
        let xs = [Ext::from_lo(&self.lo), Ext::from_hi(&self.hi)];
        let ys = [Ext::from_lo(&other.lo), Ext::from_hi(&other.hi)];
        let mut min: Option<Ext> = None;
        let mut max: Option<Ext> = None;
        for x in &xs {
            for y in &ys {
                let p = x.mul(y);
                if min.as_ref().is_none_or(|m| p < *m) {
                    min = Some(p.clone());
                }
                if max.as_ref().is_none_or(|m| p > *m) {
                    max = Some(p);
                }
            }
        }
        Interval {
            lo: min.expect("nonempty candidate set").into_lo(),
            hi: max.expect("nonempty candidate set").into_hi(),
        }
    }

    /// Interval exponentiation; even powers are clamped to `[0, +∞)`.
    pub fn pow(&self, exp: u32) -> Interval {
        if exp == 0 {
            return Interval::point(Rat::one());
        }
        let mut acc = self.clone();
        for _ in 1..exp {
            acc = acc.mul(self);
        }
        if exp.is_multiple_of(2) {
            let nonneg = Interval { lo: Some(Rat::zero()), hi: None };
            acc.meet(&nonneg).unwrap_or(nonneg)
        } else {
            acc
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.lo {
            Some(l) => write!(f, "[{l}, ")?,
            None => write!(f, "(-inf, ")?,
        }
        match &self.hi {
            Some(h) => write!(f, "{h}]"),
            None => write!(f, "+inf)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revterm_num::{rat, ratio};

    fn iv(lo: i64, hi: i64) -> Interval {
        Interval::new(Some(rat(lo)), Some(rat(hi))).unwrap()
    }

    #[test]
    fn join_meet_widen_basics() {
        let a = iv(0, 5);
        let b = iv(3, 9);
        assert_eq!(a.join(&b), iv(0, 9));
        assert_eq!(a.meet(&b), Some(iv(3, 5)));
        assert_eq!(iv(0, 1).meet(&iv(2, 3)), None);
        // Widening blows up only the moved bound.
        let w = a.widen(&a.join(&b));
        assert_eq!(w, Interval::new(Some(rat(0)), None).unwrap());
        assert!(w.join(&b) == w, "widened interval is stable under the join");
    }

    #[test]
    fn arithmetic_is_sound_on_samples() {
        let a = iv(-2, 3);
        let b = iv(4, 7);
        let sum = a.add(&b);
        let prod = a.mul(&b);
        let sq = a.pow(2);
        for x in -2..=3i64 {
            for y in 4..=7i64 {
                assert!(sum.contains(&rat(x + y)));
                assert!(prod.contains(&rat(x * y)));
            }
            assert!(sq.contains(&rat(x * x)));
        }
        assert!(sq.lo().is_some_and(|l| !l.is_negative()), "even power is nonnegative");
    }

    #[test]
    fn unbounded_multiplication() {
        let nonneg = Interval::new(Some(rat(0)), None).unwrap();
        let pos = Interval::new(Some(rat(2)), None).unwrap();
        assert_eq!(pos.mul(&pos), Interval::new(Some(rat(4)), None).unwrap());
        assert_eq!(nonneg.mul(&Interval::point(rat(0))), Interval::point(rat(0)));
        assert!(nonneg.mul(&iv(-1, 1)).is_top());
    }

    #[test]
    fn signs_and_constants() {
        assert_eq!(iv(1, 4).sign(), SignFact::Pos);
        assert_eq!(iv(0, 4).sign(), SignFact::NonNeg);
        assert_eq!(iv(-4, -1).sign(), SignFact::Neg);
        assert_eq!(iv(-4, 0).sign(), SignFact::NonPos);
        assert_eq!(Interval::point(rat(0)).sign(), SignFact::Zero);
        assert_eq!(Interval::top().sign(), SignFact::Unknown);
        assert_eq!(Interval::point(ratio(7, 2)).as_constant(), Some(&ratio(7, 2)));
        assert_eq!(iv(1, 2).as_constant(), None);
    }
}
