//! Interval closure of a premise set — the entailment fast path.
//!
//! [`close_premises`] propagates bounds through the *linear* atoms of a
//! premise set (each premise read as `p ≥ 0`) for a fixed number of rounds
//! and returns either a per-variable [`IntervalEnv`] or a proof that the
//! premises are contradictory over the rationals.
//!
//! # Why a "yes" here agrees with the multiplier LP
//!
//! Every bound the closure derives is an explicit nonnegative combination of
//! the premises: a refinement step for `x_i` from the premise
//! `c + Σ aⱼxⱼ ≥ 0` divides by the positive `|a_i|` and substitutes bounds
//! that (inductively) carry their own combinations, so each derived fact has
//! a Farkas certificate over multipliers on the *individual* premises.  The
//! multiplier LP in `revterm_solver::entail` always offers a column for each
//! single premise (products of size 1) plus the constant `1`, so whenever
//! [`PremiseClosure::entails`] answers `true` the LP is feasible and answers
//! `true` as well — and a detected [`PremiseClosure::Contradiction`] is a
//! Farkas derivation of `-1 ≥ 0`, which is exactly what `implies_false`
//! asks the LP for.  The fast path can therefore *never* flip a verdict; it
//! only skips LP work whose outcome is already forced.  When the closure is
//! inconclusive the caller falls through to the LP, so "no" costs nothing
//! but the closure itself.
//!
//! Nonlinear premises are ignored (sound: fewer facts) and nonlinear
//! conclusions are never claimed (they could require product multipliers
//! the options budget rules out).
//!
//! ```
//! use revterm_absint::close_premises;
//! use revterm_poly::{Poly, Var};
//! use revterm_num::rat;
//!
//! let x = Poly::var(Var(0));
//! // Premises: x - 9 >= 0.  Conclusion: x - 7 >= 0.
//! let premises = vec![x.clone() - Poly::constant(rat(9))];
//! let closure = close_premises(premises.iter());
//! assert!(closure.entails(&(x.clone() - Poly::constant(rat(7)))));
//! assert!(!closure.entails(&(Poly::constant(rat(11)) - x)));
//! assert!(!closure.is_contradiction());
//! ```

use crate::interval::Interval;
use revterm_num::Rat;
use revterm_poly::{LinExpr, Poly, Var};
use std::collections::BTreeMap;

/// Refinement rounds for both the premise closure and guard refinement.
///
/// Any fixed number is sound and LP-agreeing (see the module docs); more
/// rounds only buy deeper derivations at closure cost.
pub const CLOSURE_ROUNDS: usize = 3;

/// Per-variable interval bounds; variables without an entry are unbounded.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IntervalEnv {
    bounds: BTreeMap<u32, Interval>,
}

/// Result of [`close_premises`].
#[derive(Clone, Debug)]
pub enum PremiseClosure {
    /// The linear premises are contradictory over the rationals (a Farkas
    /// derivation of `-1 ≥ 0` exists).
    Contradiction,
    /// The closed bound environment.
    Env(IntervalEnv),
}

impl IntervalEnv {
    /// The unconstrained environment.
    pub fn top() -> IntervalEnv {
        IntervalEnv::default()
    }

    /// The interval currently known for `v` (top when untracked).
    pub fn get(&self, v: Var) -> Interval {
        self.bounds.get(&v.0).cloned().unwrap_or_else(Interval::top)
    }

    /// Intersect the interval for `v` with `iv`; `false` signals emptiness.
    pub fn meet_var(&mut self, v: Var, iv: &Interval) -> bool {
        match self.get(v).meet(iv) {
            Some(m) => {
                self.bounds.insert(v.0, m);
                true
            }
            None => false,
        }
    }

    /// Iterate the tracked (variable, interval) bounds in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, &Interval)> + '_ {
        self.bounds.iter().map(|(v, iv)| (Var(*v), iv))
    }

    /// Upper bound of `coeff · x_v` under the current bounds; `None` = +∞.
    fn term_sup(&self, v: Var, coeff: &Rat) -> Option<Rat> {
        let iv = self.get(v);
        if coeff.is_positive() {
            iv.hi().map(|h| h * coeff)
        } else {
            iv.lo().map(|l| l * coeff)
        }
    }

    /// Lower bound of `coeff · x_v` under the current bounds; `None` = −∞.
    fn term_inf(&self, v: Var, coeff: &Rat) -> Option<Rat> {
        let iv = self.get(v);
        if coeff.is_positive() {
            iv.lo().map(|l| l * coeff)
        } else {
            iv.hi().map(|h| h * coeff)
        }
    }

    /// One tightening pass for the atom `lin ≥ 0`.
    ///
    /// Returns `false` when the atom (under the current bounds) is
    /// contradictory.
    fn tighten(&mut self, lin: &LinExpr) -> bool {
        if lin.is_constant() {
            return !lin.constant_part().is_negative();
        }
        let terms: Vec<(Var, Rat)> = lin.nonzeros().map(|(v, c)| (v, c.clone())).collect();
        for (i, (v, coeff)) in terms.iter().enumerate() {
            // a_i·x_i ≥ -(c + Σ_{j≠i} a_j·x_j) ≥ -(c + Σ_{j≠i} sup(a_j·x_j)).
            let mut rest_sup = lin.constant_part().clone();
            let mut bounded = true;
            for (j, (w, d)) in terms.iter().enumerate() {
                if j == i {
                    continue;
                }
                match self.term_sup(*w, d) {
                    Some(s) => rest_sup += &s,
                    None => {
                        bounded = false;
                        break;
                    }
                }
            }
            if !bounded {
                continue;
            }
            let bound = &(-rest_sup) / coeff;
            let refinement = if coeff.is_positive() {
                Interval::new(Some(bound), None).expect("half-open interval")
            } else {
                Interval::new(None, Some(bound)).expect("half-open interval")
            };
            if !self.meet_var(*v, &refinement) {
                return false;
            }
        }
        true
    }

    /// Refine the environment by the atoms `lin ≥ 0` for `rounds` passes.
    ///
    /// Returns `false` when a contradiction is derived (the environment is
    /// left in an unspecified but sound state).
    pub fn refine(&mut self, atoms: &[LinExpr], rounds: usize) -> bool {
        for _ in 0..rounds {
            let before = self.bounds.clone();
            for lin in atoms {
                if !self.tighten(lin) {
                    return false;
                }
            }
            if self.bounds == before {
                break;
            }
        }
        true
    }

    /// A proved lower bound for the *linear* polynomial `p`; `None` when `p`
    /// is nonlinear or unbounded below under the current bounds.
    pub fn lower_bound(&self, p: &Poly) -> Option<Rat> {
        let lin = p.as_linear()?;
        let mut acc = lin.constant_part().clone();
        for (v, c) in lin.nonzeros() {
            acc += &self.term_inf(v, c)?;
        }
        Some(acc)
    }

    /// Does `p ≥ 0` follow from the tracked bounds?  (Linear `p` only.)
    pub fn entails(&self, p: &Poly) -> bool {
        self.lower_bound(p).is_some_and(|l| !l.is_negative())
    }

    /// Sound interval evaluation of an arbitrary polynomial.
    pub fn eval_poly(&self, p: &Poly) -> Interval {
        let mut acc = Interval::point(Rat::zero());
        for (m, c) in p.terms() {
            let mut factor = Interval::point(Rat::one());
            for (v, exp) in m.iter() {
                factor = factor.mul(&self.get(v).pow(exp));
            }
            acc = acc.add(&factor.scale(c));
        }
        acc
    }
}

/// Close a premise set (each premise read as `p ≥ 0`) under interval
/// propagation over its linear atoms.  See the module docs for the
/// agreement contract with the multiplier LP.
pub fn close_premises<'a>(premises: impl IntoIterator<Item = &'a Poly>) -> PremiseClosure {
    let lins: Vec<LinExpr> = premises.into_iter().filter_map(Poly::as_linear).collect();
    let mut env = IntervalEnv::top();
    if env.refine(&lins, CLOSURE_ROUNDS) {
        PremiseClosure::Env(env)
    } else {
        PremiseClosure::Contradiction
    }
}

impl PremiseClosure {
    /// Did the closure derive a contradiction (`-1 ≥ 0`)?
    pub fn is_contradiction(&self) -> bool {
        matches!(self, PremiseClosure::Contradiction)
    }

    /// Does `conclusion ≥ 0` follow from the closed bounds?
    ///
    /// Returns `false` on [`PremiseClosure::Contradiction`]: whether the LP
    /// would answer `true` for an arbitrary conclusion under contradictory
    /// premises depends on `use_unsat_fallback`, so the *caller* decides
    /// what a contradiction licenses.
    pub fn entails(&self, conclusion: &Poly) -> bool {
        match self {
            PremiseClosure::Contradiction => false,
            PremiseClosure::Env(env) => env.entails(conclusion),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use revterm_num::rat;

    fn x() -> Poly {
        Poly::var(Var(0))
    }

    fn y() -> Poly {
        Poly::var(Var(1))
    }

    fn c(v: i64) -> Poly {
        Poly::constant(rat(v))
    }

    #[test]
    fn transitive_bounds_close() {
        // x >= 9, y - x >= 1  ==>  y >= 10, and hence y - 3 >= 0.
        let premises = [x() - c(9), y() - x() - c(1)];
        let cl = close_premises(premises.iter());
        assert!(cl.entails(&(y() - c(10))));
        assert!(cl.entails(&(y() - c(3))));
        assert!(!cl.entails(&(y() - c(11))));
        assert!(!cl.is_contradiction());
    }

    #[test]
    fn contradiction_is_detected() {
        // x >= 5 and -x >= -3 (i.e. x <= 3) are contradictory.
        let premises = [x() - c(5), c(3) - x()];
        assert!(close_premises(premises.iter()).is_contradiction());
        // A negative constant premise alone is contradictory.
        assert!(close_premises([c(-1)].iter()).is_contradiction());
    }

    #[test]
    fn nonlinear_parts_are_ignored_soundly() {
        // The nonlinear premise contributes nothing; the linear one still closes.
        let premises = [x() * x() - c(4), x() - c(2)];
        let cl = close_premises(premises.iter());
        assert!(cl.entails(&(x() - c(2))));
        // Nonlinear conclusions are never claimed, even when true.
        assert!(!cl.entails(&(x() * x() - c(4))));
    }

    #[test]
    fn negative_coefficients_refine_upper_bounds() {
        // 10 - x >= 0 and x - y >= 0  ==>  y <= 10, i.e. 10 - y >= 0.
        let premises = [c(10) - x(), x() - y()];
        let cl = close_premises(premises.iter());
        assert!(cl.entails(&(c(10) - y())));
        assert!(!cl.entails(&(y() - c(0))));
    }
}
