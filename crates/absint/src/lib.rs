//! Abstract-interpretation pre-analysis for the RevTerm pipeline.
//!
//! This crate computes cheap static facts about a
//! [`revterm_ts::TransitionSystem`] *before* the expensive machinery
//! (resolution enumeration, Houdini invariant synthesis, Farkas/Handelman
//! multiplier LPs) runs, in two closely related forms:
//!
//! 1. **Per-location interval/sign fixpoint** — [`analyze`] runs a worklist
//!    abstract interpretation in the interval domain with delayed widening
//!    and a narrowing pass, producing an [`AbstractState`]: for every
//!    location either a proof of unreachability or a sound per-variable
//!    [`Interval`] (with derived [`SignFact`]/constancy facts).  The prover
//!    session caches one per analyzed system; the `revterm analyze` CLI
//!    subcommand pretty-prints it together with [`Diagnostics`] (unused
//!    variables, unreachable locations, constant guards).
//!
//! 2. **Premise closure** — [`close_premises`] interval-closes one
//!    entailment query's premise set.  Because every bound it derives is an
//!    explicit nonnegative (Farkas) combination of the premises, a positive
//!    answer from [`PremiseClosure::entails`] is *guaranteed* to agree with
//!    the multiplier LP, so Houdini and the blocked-transition check use it
//!    to skip LP solves outright (`absint_fast_paths` in `LpStats`).
//!
//! Both are **sound pruning only**: the facts may only skip work whose
//! outcome is already forced, never change a verdict, certificate, or perf
//! digest.  That contract is why the certificate-producing path does *not*
//! filter atom pools or template universes by these facts — dropping atoms
//! that the analysis proves redundant would still change the shape of the
//! synthesized invariants.  The universe filters
//! ([`AbstractState::varying_vars`], [`AbstractState::filtered_monomials`],
//! [`AbstractState::specialize`]) are exposed for diagnostics and for
//! callers that do not need bitwise-stable certificates.
//!
//! # Example: analyzing a lowered program
//!
//! ```
//! use revterm_absint::{analyze, diagnostics};
//! use revterm_lang::parse_program;
//! use revterm_ts::lower;
//!
//! let program = parse_program("x := 5; while x >= 1 do x := x - 1; od").unwrap();
//! let ts = lower(&program).unwrap();
//! let state = analyze(&ts);
//!
//! // Every location the analysis keeps is a sound envelope; after `x := 5`
//! // the loop head sees x in [0, 5] (narrowing recovers the bounds).
//! assert!(state.is_reachable(ts.init_loc()));
//! assert!(!state.terminal_unreachable(&ts));
//! let diag = diagnostics(&ts, &state);
//! assert!(diag.unreachable_locs.is_empty());
//! ```
//!
//! # Example: the entailment fast path
//!
//! ```
//! use revterm_absint::close_premises;
//! use revterm_poly::{Poly, Var};
//! use revterm_num::rat;
//!
//! let x = Poly::var(Var(0));
//! let y = Poly::var(Var(1));
//! // x >= 2 and y - x >= 0 entail y >= 1 by pure bound propagation.
//! let premises = vec![x - Poly::constant(rat(2)), y.clone() - Poly::var(Var(0))];
//! let closure = close_premises(premises.iter());
//! assert!(closure.entails(&(y - Poly::constant(rat(1)))));
//! ```

#![warn(missing_docs)]

mod analysis;
mod closure;
mod interval;

pub use analysis::{analyze, analyze_from, diagnostics, AbstractState, Diagnostics};
pub use closure::{close_premises, IntervalEnv, PremiseClosure, CLOSURE_ROUNDS};
pub use interval::{Interval, SignFact};
