//! Per-location interval fixpoint over a [`TransitionSystem`].
//!
//! [`analyze`] runs a classic worklist abstract interpretation in the
//! interval domain: ascending iteration with delayed widening until a
//! post-fixpoint is reached, followed by a bounded number of narrowing
//! passes (plain recomputation below the post-fixpoint).  The result is an
//! [`AbstractState`]: for every location either "statically unreachable" or
//! a sound per-variable [`Interval`] envelope of every concrete state that
//! can reach the location.
//!
//! Transfer functions are keyed on [`TransitionKind`]: guards refine the
//! incoming envelope by the linear unprimed atoms of the relation,
//! deterministic assignments evaluate their right-hand side in interval
//! arithmetic, nondeterministic assignments project the written variable to
//! top, and the opaque `General` kind (reversed systems) falls back to the
//! constraints its purely-primed atoms place on the post-state.

use crate::closure::{IntervalEnv, CLOSURE_ROUNDS};
use crate::interval::{Interval, SignFact};
use revterm_num::Rat;
use revterm_poly::{monomials_up_to_degree, Monomial, Poly, Var};
use revterm_ts::interp::Config;
use revterm_ts::{Loc, Transition, TransitionKind, TransitionSystem, VarTable};
use std::collections::VecDeque;

/// Join count after which a location's envelope is widened on every further
/// change.  Two plain joins keep small constant ramps exact before bounds
/// escape to infinity.
const WIDEN_DELAY: u32 = 2;

/// Descending (narrowing) passes after the widened post-fixpoint.
const NARROW_PASSES: usize = 2;

/// The result of [`analyze`]: a sound per-location, per-variable interval
/// envelope of the reachable states of one transition system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AbstractState {
    /// Indexed by `Loc.0`; `None` means statically unreachable.
    envs: Vec<Option<Vec<Interval>>>,
}

/// Program diagnostics derived from an [`AbstractState`] (the payload of
/// the `revterm analyze` CLI subcommand).
#[derive(Clone, Debug, Default)]
pub struct Diagnostics {
    /// Locations no concrete execution can reach.
    pub unreachable_locs: Vec<Loc>,
    /// Variable indices mentioned nowhere in the system (neither in the
    /// initial assertion nor in any transition).
    pub unused_vars: Vec<usize>,
    /// Variables proven to hold one fixed value at every reachable location.
    pub constant_vars: Vec<(usize, Rat)>,
    /// Transitions whose guard is decided at their (reachable) source
    /// location: `true` = the guard always holds, `false` = it never fires.
    pub constant_guards: Vec<(usize, bool)>,
}

/// Convert a dense per-variable envelope into the sparse closure
/// environment used for refinement and polynomial evaluation.
fn slice_to_env(env: &[Interval], vars: &VarTable) -> IntervalEnv {
    let mut ienv = IntervalEnv::top();
    for (i, iv) in env.iter().enumerate() {
        if !iv.is_top() {
            let ok = ienv.meet_var(vars.unprimed(i), iv);
            debug_assert!(ok, "meet with top cannot be empty");
        }
    }
    ienv
}

/// Refine `env` by the atoms `p ≥ 0` (only linear, all-unprimed atoms
/// contribute).  `None` signals that the constraints are unsatisfiable
/// under `env`.
fn refine_slice<'a>(
    env: Vec<Interval>,
    atoms: impl Iterator<Item = &'a Poly>,
    vars: &VarTable,
) -> Option<Vec<Interval>> {
    let lins: Vec<_> = atoms
        .filter(|p| p.vars().into_iter().all(|v| vars.is_unprimed(v)))
        .filter_map(Poly::as_linear)
        .collect();
    if lins.is_empty() {
        return Some(env);
    }
    let n = env.len();
    let mut ienv = slice_to_env(&env, vars);
    if !ienv.refine(&lins, CLOSURE_ROUNDS) {
        return None;
    }
    Some((0..n).map(|i| ienv.get(vars.unprimed(i))).collect())
}

/// Abstract post of one transition; `None` when the transition provably
/// cannot fire from `env`.
fn transfer(ts: &TransitionSystem, t: &Transition, env: &[Interval]) -> Option<Vec<Interval>> {
    let vars = ts.vars();
    match &t.kind {
        TransitionKind::TerminalSelfLoop => Some(env.to_vec()),
        TransitionKind::Guard => refine_slice(env.to_vec(), t.relation.atoms().iter(), vars),
        TransitionKind::Assign { var, rhs } => {
            let refined = refine_slice(env.to_vec(), t.relation.atoms().iter(), vars)?;
            let val = slice_to_env(&refined, vars).eval_poly(rhs);
            let mut out = refined;
            out[*var] = val;
            Some(out)
        }
        TransitionKind::NdetAssign { var } => {
            let mut out = refine_slice(env.to_vec(), t.relation.atoms().iter(), vars)?;
            out[*var] = Interval::top();
            Some(out)
        }
        TransitionKind::General => {
            // Pre-state feasibility: the purely-unprimed atoms must hold.
            refine_slice(env.to_vec(), t.relation.atoms().iter(), vars)?;
            // Post-state: only purely-primed atoms constrain it soundly.
            let primed: Vec<Poly> = t
                .relation
                .atoms()
                .iter()
                .filter(|p| {
                    let vs = p.vars();
                    !vs.is_empty() && vs.into_iter().all(|v| vars.is_primed(v))
                })
                .map(|p| p.rename(&|v| vars.unprimed(vars.base_index(v))))
                .collect();
            refine_slice(vec![Interval::top(); env.len()], primed.iter(), vars)
        }
    }
}

fn join_env(a: &[Interval], b: &[Interval]) -> Vec<Interval> {
    a.iter().zip(b).map(|(x, y)| x.join(y)).collect()
}

fn widen_env(old: &[Interval], joined: &[Interval]) -> Vec<Interval> {
    old.iter().zip(joined).map(|(o, j)| o.widen(j)).collect()
}

/// Run the interval analysis to fixpoint (widening, then narrowing).
pub fn analyze(ts: &TransitionSystem) -> AbstractState {
    let n = ts.vars().len();
    let mut seeds: Vec<Option<Vec<Interval>>> = vec![None; ts.num_locs()];
    let init_env =
        refine_slice(vec![Interval::top(); n], ts.init_assertion().atoms().iter(), ts.vars());
    let Some(init_env) = init_env else {
        return AbstractState { envs: seeds };
    };
    seeds[ts.init_loc().0] = Some(init_env);
    fixpoint(ts, &seeds)
}

/// [`analyze`] started from an explicit set of configurations instead of the
/// initial assertion.
///
/// The result envelopes every state reachable *from any of `starts`* — which
/// need not satisfy the initial assertion and may sit at arbitrary
/// locations.  This is the sound pre-analysis for probe runs that replay
/// foreign configurations through a system (Check 2 seeds its backward
/// probes with configurations of the *unrestricted* system): if the terminal
/// location is unreachable in this state, no such probe can terminate.
pub fn analyze_from<'a>(
    ts: &TransitionSystem,
    starts: impl IntoIterator<Item = &'a Config>,
) -> AbstractState {
    let mut seeds: Vec<Option<Vec<Interval>>> = vec![None; ts.num_locs()];
    for config in starts {
        let point: Vec<Interval> =
            config.vals.0.iter().map(|v| Interval::point(Rat::from(v.clone()))).collect();
        let slot = &mut seeds[config.loc.0];
        *slot = Some(match slot.take() {
            None => point,
            Some(cur) => join_env(&cur, &point),
        });
    }
    fixpoint(ts, &seeds)
}

/// Worklist fixpoint from the given per-location seed envelopes.
fn fixpoint(ts: &TransitionSystem, seeds: &[Option<Vec<Interval>>]) -> AbstractState {
    let num_locs = ts.num_locs();
    let mut envs = seeds.to_vec();

    // Ascending phase with delayed widening.
    let mut visits: Vec<u32> = vec![0; num_locs];
    let mut queued: Vec<bool> = vec![false; num_locs];
    let mut worklist = VecDeque::new();
    for loc in ts.locations() {
        if envs[loc.0].is_some() {
            worklist.push_back(loc);
            queued[loc.0] = true;
        }
    }
    while let Some(loc) = worklist.pop_front() {
        queued[loc.0] = false;
        let src = envs[loc.0].clone().expect("queued locations have an envelope");
        for t in ts.transitions_from(loc) {
            let Some(out) = transfer(ts, t, &src) else {
                continue;
            };
            let tgt = t.target.0;
            let updated = match &envs[tgt] {
                None => Some(out),
                Some(old) => {
                    let joined = join_env(old, &out);
                    if joined == *old {
                        None
                    } else if visits[tgt] >= WIDEN_DELAY {
                        Some(widen_env(old, &joined))
                    } else {
                        Some(joined)
                    }
                }
            };
            if let Some(new_env) = updated {
                visits[tgt] += 1;
                envs[tgt] = Some(new_env);
                if !queued[tgt] {
                    queued[tgt] = true;
                    worklist.push_back(Loc(tgt));
                }
            }
        }
    }

    // Descending phase: recompute below the post-fixpoint (no widening).
    for _ in 0..NARROW_PASSES {
        let mut next = seeds.to_vec();
        for t in ts.transitions() {
            let Some(src) = &envs[t.source.0] else {
                continue;
            };
            let Some(out) = transfer(ts, t, src) else {
                continue;
            };
            let tgt = t.target.0;
            next[tgt] = Some(match &next[tgt] {
                None => out,
                Some(cur) => join_env(cur, &out),
            });
        }
        envs = next;
    }

    AbstractState { envs }
}

impl AbstractState {
    /// May any concrete execution reach `loc`?  (`false` is a proof of
    /// unreachability; `true` is only an over-approximation.)
    pub fn is_reachable(&self, loc: Loc) -> bool {
        self.envs.get(loc.0).is_some_and(Option::is_some)
    }

    /// The per-variable envelope at `loc`; `None` when unreachable.
    pub fn env(&self, loc: Loc) -> Option<&[Interval]> {
        self.envs.get(loc.0).and_then(|e| e.as_deref())
    }

    /// The interval of variable `var` at `loc`; `None` when unreachable.
    pub fn interval(&self, loc: Loc, var: usize) -> Option<&Interval> {
        self.env(loc).and_then(|e| e.get(var))
    }

    /// The constant value of `var` at `loc`, when the analysis pinned one.
    pub fn constant_at(&self, loc: Loc, var: usize) -> Option<&Rat> {
        self.interval(loc, var).and_then(Interval::as_constant)
    }

    /// The sign fact for `var` at `loc` (unknown when unreachable).
    pub fn sign_at(&self, loc: Loc, var: usize) -> SignFact {
        self.interval(loc, var).map_or(SignFact::Unknown, Interval::sign)
    }

    /// Does `p ≥ 0` hold in every concrete state that can reach `loc`?
    /// Vacuously `true` when `loc` is statically unreachable.
    pub fn implied(&self, ts: &TransitionSystem, loc: Loc, p: &Poly) -> bool {
        match self.env(loc) {
            None => true,
            Some(env) => {
                slice_to_env(env, ts.vars()).eval_poly(p).lo().is_some_and(|l| !l.is_negative())
            }
        }
    }

    /// Variable indices *not* pinned to a constant at `loc` — the template
    /// universe that can actually vary there.  Empty when unreachable.
    pub fn varying_vars(&self, loc: Loc) -> Vec<usize> {
        self.env(loc).map_or_else(Vec::new, |env| {
            (0..env.len()).filter(|&i| env[i].as_constant().is_none()).collect()
        })
    }

    /// The `monomials_up_to_degree` universe at `loc` restricted to the
    /// variables that can vary there.
    pub fn filtered_monomials(&self, vars: &VarTable, loc: Loc, max_degree: u32) -> Vec<Monomial> {
        let vs: Vec<Var> = self.varying_vars(loc).into_iter().map(|i| vars.unprimed(i)).collect();
        monomials_up_to_degree(&vs, max_degree)
    }

    /// Substitute every variable pinned to a constant at `loc` into `p`.
    pub fn specialize(&self, vars: &VarTable, loc: Loc, p: &Poly) -> Poly {
        match self.env(loc) {
            None => p.clone(),
            Some(env) => p.substitute(&|v| {
                if vars.is_unprimed(v) {
                    if let Some(c) = env[vars.base_index(v)].as_constant() {
                        return Poly::constant(c.clone());
                    }
                }
                Poly::var(v)
            }),
        }
    }

    /// Is the terminal location proven unreachable?  A `true` here means no
    /// concrete run of `ts` can terminate.
    pub fn terminal_unreachable(&self, ts: &TransitionSystem) -> bool {
        !self.is_reachable(ts.terminal_loc())
    }

    /// Soundness predicate used by the differential tests: the envelope at
    /// `config.loc` must contain the concrete valuation.
    pub fn contains_config(&self, config: &Config) -> bool {
        match self.env(config.loc) {
            None => false,
            Some(env) => env
                .iter()
                .zip(config.vals.0.iter())
                .all(|(iv, v)| iv.contains(&Rat::from(v.clone()))),
        }
    }
}

/// Derive the `revterm analyze` diagnostics from an abstract state.
pub fn diagnostics(ts: &TransitionSystem, state: &AbstractState) -> Diagnostics {
    let n = ts.vars().len();
    let unreachable_locs: Vec<Loc> = ts.locations().filter(|l| !state.is_reachable(*l)).collect();
    let unused_vars: Vec<usize> = {
        let mentioned = ts.mentioned_vars();
        (0..n).filter(|&i| !mentioned[i]).collect()
    };
    let constant_vars: Vec<(usize, Rat)> = (0..n)
        .filter_map(|i| {
            let mut value: Option<&Rat> = None;
            for loc in ts.locations() {
                if !state.is_reachable(loc) {
                    continue;
                }
                match (value, state.constant_at(loc, i)) {
                    (_, None) => return None,
                    (None, Some(c)) => value = Some(c),
                    (Some(prev), Some(c)) if prev == c => {}
                    _ => return None,
                }
            }
            value.map(|c| (i, c.clone()))
        })
        .collect();
    let mut constant_guards = Vec::new();
    for t in ts.transitions() {
        if matches!(t.kind, TransitionKind::TerminalSelfLoop) {
            continue;
        }
        let Some(env) = state.env(t.source) else {
            continue;
        };
        let guard: Vec<&Poly> = t
            .relation
            .atoms()
            .iter()
            .filter(|p| !p.is_constant() && p.vars().into_iter().all(|v| ts.vars().is_unprimed(v)))
            .collect();
        if guard.is_empty() {
            continue;
        }
        let ienv = slice_to_env(env, ts.vars());
        if guard.iter().all(|p| ienv.eval_poly(p).lo().is_some_and(|l| !l.is_negative())) {
            constant_guards.push((t.id, true));
        } else if guard.iter().any(|p| ienv.eval_poly(p).hi().is_some_and(Rat::is_negative)) {
            constant_guards.push((t.id, false));
        }
    }
    Diagnostics { unreachable_locs, unused_vars, constant_vars, constant_guards }
}
