//! Widening termination and soundness of the interval fixpoint.

use revterm_absint::{analyze, diagnostics};
use revterm_lang::parse_program;
use revterm_num::Int;
use revterm_ts::interp::{bounded_reach, is_initial_valuation, Config, Valuation};
use revterm_ts::{lower, TransitionSystem};

/// The paper's Fig. 1 running example (same text as the suite constant).
const RUNNING_EXAMPLE: &str =
    "while x >= 9 do x := ndet(); y := 10 * x; while x <= y do x := x + 1; od od";

fn system(src: &str) -> TransitionSystem {
    lower(&parse_program(src).expect("parse")).expect("lower")
}

/// Every concrete configuration reachable from `seeds` must be inside the
/// abstract envelope of its location.
fn assert_sound(ts: &TransitionSystem, seeds: &[Vec<i64>], ndet_values: &[i64]) {
    let state = analyze(ts);
    // Leading constant assignments are folded into the init assertion by
    // the lowering, so not every seed is a legal initial state.
    let initial: Vec<Config> = seeds
        .iter()
        .map(|vals| Valuation::from_i64s(vals))
        .filter(|vals| is_initial_valuation(ts, vals))
        .map(|vals| Config::new(ts.init_loc(), vals))
        .collect();
    assert!(!initial.is_empty(), "no seed satisfies the init assertion");
    let ndet: Vec<Int> = ndet_values.iter().map(|&v| Int::from(v)).collect();
    let reached = bounded_reach(ts, &initial, &ndet, 40, 4000);
    assert!(!reached.is_empty(), "bounded_reach explored nothing");
    for config in &reached {
        assert!(
            state.contains_config(config),
            "abstract state does not cover concrete config at {}",
            ts.loc_name(config.loc)
        );
    }
}

#[test]
fn widening_terminates_on_the_running_example() {
    let ts = system(RUNNING_EXAMPLE);
    // Termination of `analyze` on the nested-loop, nondeterministic system
    // is the point of this test; the assertions below are sanity on top.
    let state = analyze(&ts);
    assert!(state.is_reachable(ts.init_loc()));
    // x = 5 exits the outer loop immediately, so the terminal is reachable
    // and the analysis must not claim otherwise.
    assert!(!state.terminal_unreachable(&ts));
    assert_sound(&ts, &[vec![10, 0], vec![5, 0], vec![9, 100]], &[-3, 9, 11]);
}

#[test]
fn widening_terminates_on_an_unbounded_counter() {
    // The counter diverges for every initial value; widening must still
    // reach a (top) fixpoint instead of enumerating [0,1], [0,2], ...
    let ts = system("while x >= 0 do x := x + 1; od");
    let state = analyze(&ts);
    assert!(state.is_reachable(ts.init_loc()));
    assert_sound(&ts, &[vec![0], vec![7], vec![-2]], &[]);
}

#[test]
fn pinned_counter_proves_the_terminal_unreachable() {
    // After `x := 5` the loop guard `x >= 0` only ever sees x in [5, +inf):
    // the exit guard `x <= -1` can never fire, and the analysis proves it.
    let ts = system("x := 5; while x >= 0 do x := x + 1; od");
    let state = analyze(&ts);
    assert!(state.terminal_unreachable(&ts));
    let diag = diagnostics(&ts, &state);
    assert!(
        diag.unreachable_locs.contains(&ts.terminal_loc()),
        "diagnostics must report the unreachable terminal"
    );
}

#[test]
fn constants_and_unused_vars_are_reported() {
    // `z` is mentioned nowhere; `c` is pinned to 3 at every location it is
    // live (it is assigned once before the loop and never written again).
    let ts = system("c := 3; while x >= 1 do x := x - c; od");
    let state = analyze(&ts);
    let diag = diagnostics(&ts, &state);
    let names = ts.vars().names();
    let c_idx = names.iter().position(|n| n == "c").expect("c exists");
    // The lowering folds the leading `c := 3` into the init assertion, so c
    // is pinned to 3 at every reachable location.
    assert!(
        diag.constant_vars.iter().any(|(i, v)| *i == c_idx && v == &revterm_num::rat(3)),
        "c must be reported constant-everywhere with value 3, got {:?}",
        diag.constant_vars
    );
    assert!(diag.unused_vars.is_empty(), "all variables of this program are used");
    assert_sound(&ts, &[vec![3, 10], vec![3, 0]], &[]);
}
